package link

import (
	"errors"
	"math/rand"
)

// ErrChannel is returned for invalid channel parameters.
var ErrChannel = errors.New("link: invalid channel configuration")

// ChannelConfig parameterises the Gilbert–Elliott two-state burst-loss
// model. The channel sits in a Good or Bad state; each transmitted
// frame sees the loss and bit-error probability of the current state,
// then the state transitions. Body-area links are bursty — shadowing
// by the wearer's own body holds the channel in the Bad state for
// runs of frames — which is exactly what the two-state chain captures
// and a memoryless loss rate does not.
type ChannelConfig struct {
	// PGoodToBad and PBadToGood are the per-frame state transition
	// probabilities. Their ratio sets the stationary loss mix; their
	// magnitude sets the burst length (mean Bad dwell = 1/PBadToGood
	// frames).
	PGoodToBad float64
	PBadToGood float64
	// LossGood and LossBad are the per-frame erasure probabilities in
	// each state.
	LossGood float64
	LossBad  float64
	// BERGood and BERBad are per-bit flip probabilities applied to
	// delivered frames (caught by the packet CRC downstream).
	BERGood float64
	BERBad  float64
	// PDuplicate is the probability a delivered frame arrives twice
	// (MAC-level ack ambiguity).
	PDuplicate float64
	// PReorder is the probability a delivered frame is held back and
	// delivered after the next transmission instead of immediately.
	PReorder float64
	// Seed drives all channel randomness.
	Seed int64
}

func (c ChannelConfig) validate() error {
	for _, p := range []float64{
		c.PGoodToBad, c.PBadToGood, c.LossGood, c.LossBad,
		c.BERGood, c.BERBad, c.PDuplicate, c.PReorder,
	} {
		if p != p || p < 0 || p > 1 { // p != p catches NaN
			return ErrChannel
		}
	}
	return nil
}

// StationaryLoss returns the long-run frame-loss probability implied by
// the configuration (the weighted mix of the two states' loss rates).
func (c ChannelConfig) StationaryLoss() float64 {
	if c.PGoodToBad+c.PBadToGood == 0 {
		return c.LossGood
	}
	pBad := c.PGoodToBad / (c.PGoodToBad + c.PBadToGood)
	return (1-pBad)*c.LossGood + pBad*c.LossBad
}

// ChannelStats counts what the channel did to the traffic.
type ChannelStats struct {
	// Sent is the number of Transmit calls (transmission attempts).
	Sent int
	// Delivered counts frames handed to the receiver (duplicates count
	// once per copy).
	Delivered int
	// Dropped counts erased frames.
	Dropped int
	// CorruptedBits counts flipped bits across all delivered frames.
	CorruptedBits int
	// Duplicated counts frames delivered twice.
	Duplicated int
	// Reordered counts frames that were held back past a later one.
	Reordered int
	// BadFrames counts attempts made while the channel was in the Bad
	// state.
	BadFrames int
}

// Channel is a seeded Gilbert–Elliott lossy link.
type Channel struct {
	cfg   ChannelConfig
	rng   *rand.Rand
	bad   bool
	held  [][]byte // frames delayed by reordering
	stats ChannelStats
}

// NewChannel validates the configuration and builds the channel in the
// Good state.
func NewChannel(cfg ChannelConfig) (*Channel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Bad reports whether the channel is currently in the Bad state.
func (ch *Channel) Bad() bool { return ch.bad }

// Stats returns the accumulated traffic statistics.
func (ch *Channel) Stats() ChannelStats { return ch.stats }

// Transmit pushes one frame through the channel and returns the frames
// that come out the far end — possibly none (erasure), one, or more
// (duplication, or a previously held frame released by reordering).
// Delivered frames are copies; corruption never aliases the caller's
// buffer.
func (ch *Channel) Transmit(frame []byte) [][]byte {
	ch.stats.Sent++
	loss, ber := ch.cfg.LossGood, ch.cfg.BERGood
	if ch.bad {
		ch.stats.BadFrames++
		loss, ber = ch.cfg.LossBad, ch.cfg.BERBad
	}
	var out [][]byte
	if ch.rng.Float64() < loss {
		ch.stats.Dropped++
	} else {
		copies := 1
		if ch.cfg.PDuplicate > 0 && ch.rng.Float64() < ch.cfg.PDuplicate {
			copies = 2
			ch.stats.Duplicated++
		}
		for i := 0; i < copies; i++ {
			out = append(out, ch.corrupt(frame, ber))
		}
		ch.stats.Delivered += copies
		if ch.cfg.PReorder > 0 && ch.rng.Float64() < ch.cfg.PReorder {
			// Hold this frame's copies; they come out after the next
			// transmission.
			ch.held = append(ch.held, out...)
			ch.stats.Reordered += len(out)
			out = nil
		}
	}
	if len(out) > 0 && len(ch.held) > 0 {
		out = append(out, ch.held...)
		ch.held = nil
	}
	// State transition after the frame.
	if ch.bad {
		if ch.rng.Float64() < ch.cfg.PBadToGood {
			ch.bad = false
		}
	} else if ch.rng.Float64() < ch.cfg.PGoodToBad {
		ch.bad = true
	}
	return out
}

// Drain releases any frames still held by the reordering stage (end of
// transmission).
func (ch *Channel) Drain() [][]byte {
	out := ch.held
	ch.held = nil
	return out
}

// corrupt copies the frame, flipping each bit with probability ber.
func (ch *Channel) corrupt(frame []byte, ber float64) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	if ber <= 0 {
		return out
	}
	for i := range out {
		for b := 0; b < 8; b++ {
			if ch.rng.Float64() < ber {
				out[i] ^= 1 << b
				ch.stats.CorruptedBits++
			}
		}
	}
	return out
}

package link

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrFault is returned for invalid fault configurations.
var ErrFault = errors.New("link: invalid fault configuration")

// FaultKind classifies a per-lead signal fault.
type FaultKind int

// Fault kinds, the analog-front-end failure modes of ambulatory
// recording (Section II of the paper discusses exactly these
// disturbance classes at the electrode).
const (
	// FaultLeadOff is a detached electrode: the lead flatlines at the
	// amplifier's idle level with only instrumentation noise left.
	FaultLeadOff FaultKind = iota
	// FaultSaturation pins the lead at the front-end rail — a dried
	// gel pad or DC offset drift beyond the amplifier's input range.
	FaultSaturation
	// FaultSpike adds a large electrode-motion transient with an
	// exponential decay.
	FaultSpike
)

// String returns the fault kind's display name.
func (k FaultKind) String() string {
	switch k {
	case FaultLeadOff:
		return "lead-off"
	case FaultSaturation:
		return "saturation"
	case FaultSpike:
		return "spike"
	default:
		return "unknown"
	}
}

// LeadFault is one fault episode on one lead over [Start, End) samples.
type LeadFault struct {
	Lead       int
	Start, End int
	Kind       FaultKind
	// Level is the rail voltage (mV) for saturation and the transient
	// amplitude (mV) for spikes; ignored for lead-off.
	Level float64
}

// FaultConfig parameterises signal-fault injection: a deterministic
// schedule, plus Poisson-placed random episodes per lead.
type FaultConfig struct {
	// Schedule holds faults applied exactly as given.
	Schedule []LeadFault
	// LeadOffRate is the expected number of lead-off episodes per
	// minute per lead; LeadOffMeanS their mean duration (default 5 s).
	LeadOffRate  float64
	LeadOffMeanS float64
	// SatRate and SatMeanS place rail-saturation episodes the same
	// way; RailMV is the front-end rail (default 3.3 mV).
	SatRate  float64
	SatMeanS float64
	RailMV   float64
	// SpikeRate is the expected number of motion spikes per minute per
	// lead; SpikeAmpMV their peak amplitude (default 2 mV).
	SpikeRate  float64
	SpikeAmpMV float64
	// Seed drives the random placement.
	Seed int64
}

func (c FaultConfig) withDefaults() FaultConfig {
	out := c
	if out.LeadOffMeanS <= 0 {
		out.LeadOffMeanS = 5
	}
	if out.SatMeanS <= 0 {
		out.SatMeanS = 5
	}
	if out.RailMV <= 0 {
		out.RailMV = 3.3
	}
	if out.SpikeAmpMV <= 0 {
		out.SpikeAmpMV = 2
	}
	return out
}

// InjectFaults returns a copy of the leads with the configured faults
// rendered in, plus the full applied schedule (configured + random)
// sorted by start sample. The input is never mutated.
func InjectFaults(leads [][]float64, fs float64, cfg FaultConfig) ([][]float64, []LeadFault, error) {
	if len(leads) == 0 || fs <= 0 {
		return nil, nil, ErrFault
	}
	n := len(leads[0])
	c := cfg.withDefaults()
	out := make([][]float64, len(leads))
	for li := range leads {
		if len(leads[li]) != n {
			return nil, nil, ErrFault
		}
		out[li] = append([]float64(nil), leads[li]...)
	}
	schedule := append([]LeadFault(nil), c.Schedule...)
	for _, f := range schedule {
		if f.Lead < 0 || f.Lead >= len(leads) || f.Start < 0 || f.End > n || f.Start >= f.End {
			return nil, nil, ErrFault
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))
	schedule = append(schedule, randomEpisodes(rng, len(leads), n, fs, c)...)
	sort.Slice(schedule, func(i, j int) bool {
		if schedule[i].Start != schedule[j].Start {
			return schedule[i].Start < schedule[j].Start
		}
		return schedule[i].Lead < schedule[j].Lead
	})
	for _, f := range schedule {
		applyFault(out[f.Lead], f, rng)
	}
	return out, schedule, nil
}

// randomEpisodes draws the Poisson-placed fault episodes.
func randomEpisodes(rng *rand.Rand, leads, n int, fs float64, c FaultConfig) []LeadFault {
	var out []LeadFault
	place := func(ratePerMin, meanDurS float64, kind FaultKind, level float64) {
		if ratePerMin <= 0 {
			return
		}
		perSample := ratePerMin / 60 / fs
		for li := 0; li < leads; li++ {
			for i := 0; i < n; i++ {
				if rng.Float64() >= perSample {
					continue
				}
				dur := int(rng.ExpFloat64() * meanDurS * fs)
				if dur < 1 {
					dur = 1
				}
				end := i + dur
				if end > n {
					end = n
				}
				out = append(out, LeadFault{Lead: li, Start: i, End: end, Kind: kind, Level: level})
				i = end // episodes on one lead do not overlap
			}
		}
	}
	place(c.LeadOffRate, c.LeadOffMeanS, FaultLeadOff, 0)
	place(c.SatRate, c.SatMeanS, FaultSaturation, c.RailMV)
	place(c.SpikeRate, 0.15, FaultSpike, c.SpikeAmpMV)
	return out
}

// applyFault renders one episode into the lead in place.
func applyFault(x []float64, f LeadFault, rng *rand.Rand) {
	switch f.Kind {
	case FaultLeadOff:
		// Flatline with residual instrumentation noise (~2 µV RMS).
		for i := f.Start; i < f.End; i++ {
			x[i] = 2e-3 * rng.NormFloat64()
		}
	case FaultSaturation:
		for i := f.Start; i < f.End; i++ {
			x[i] = f.Level
		}
	case FaultSpike:
		tau := float64(f.End-f.Start) / 4
		if tau < 1 {
			tau = 1
		}
		amp := f.Level
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		for i := f.Start; i < f.End; i++ {
			x[i] += amp * math.Exp(-float64(i-f.Start)/tau)
		}
	}
}

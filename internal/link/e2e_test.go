package link_test

// End-to-end acceptance test for the fault-injected link layer: the
// full node → ARQ link → gateway chain under the issue's headline
// scenario. It lives in an external test package because the chain
// pulls in core and gateway, which themselves import link.

import (
	"testing"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/energy"
	"wbsn/internal/gateway"
	"wbsn/internal/link"
)

// TestEndToEndLossyChain runs the acceptance scenario: ~10%
// Gilbert–Elliott packet loss on the radio hop plus one lead detached
// for 20% of the record. The chain must complete without error, the
// ARQ must recover at least 95% of the windows, the retransmission
// energy must be visible in the energy report, and the remote
// delineation on the reconstructed signal must keep at least 90% QRS
// sensitivity.
func TestEndToEndLossyChain(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 71, Duration: 40, Noise: ecg.NoiseConfig{EMG: 0.01}})
	n := rec.Len()

	// Lead 0 detaches for the middle 20% of the record.
	faulted, faults, err := link.InjectFaults(rec.Leads, rec.Fs, link.FaultConfig{
		Schedule: []link.LeadFault{{Lead: 0, Start: 2 * n / 5, End: 3 * n / 5, Kind: link.FaultLeadOff}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 {
		t.Fatalf("fault schedule %v", faults)
	}

	// Node-side CS encoder streaming the faulted leads.
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := gateway.NewReceiver(gateway.MatchNode(node.Config()))
	if err != nil {
		t.Fatal(err)
	}

	// A bursty channel with ~10% stationary frame loss.
	chCfg := link.ChannelConfig{
		PGoodToBad: 0.08, PBadToGood: 0.25,
		LossGood: 0.01, LossBad: 0.4,
		BERBad: 1e-6, PReorder: 0.02, Seed: 3,
	}
	if sl := chCfg.StationaryLoss(); sl < 0.08 || sl > 0.13 {
		t.Fatalf("channel stationary loss %.3f, want ~0.10", sl)
	}
	ch, err := link.NewChannel(chCfg)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := link.NewLink(link.ARQConfig{PAckLoss: 0.05, Seed: 4}, ch, rx)
	if err != nil {
		t.Fatal(err)
	}

	events, err := stream.PushBlock(faulted)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for _, e := range events {
		if e.Kind != core.EventPacket || e.Measurements == nil {
			continue
		}
		if _, err := lk.SendMeasurements(e.At, e.Measurements); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if err := lk.Close(); err != nil {
		t.Fatal(err)
	}
	report := lk.Report()
	if report.Packets != sent || sent < 15 {
		t.Fatalf("sent %d packets, report says %d", sent, report.Packets)
	}

	// ARQ recovery: at least 95% of windows delivered.
	if dr := report.DeliveryRatio(); dr < 0.95 {
		t.Errorf("ARQ delivery ratio %.3f, want >= 0.95 (lost %d of %d)",
			dr, report.Lost, report.Packets)
	}
	// The lossy channel must have actually cost retransmissions, and the
	// overhead must land in the energy report.
	if report.Retransmissions == 0 {
		t.Error("10% loss produced no retransmissions")
	}
	retx := report.RetransmitEnergyJ()
	if retx <= 0 {
		t.Errorf("retransmission energy %.3e J, want > 0", retx)
	}
	model := energy.DefaultNode()
	cfg := node.Config()
	bd := model.CSWindow("CS over lossy link",
		energy.WindowSpec{SamplesPerLead: cfg.CSWindow, Leads: cfg.Leads, BitsPerSample: cfg.BitsPerSample},
		rx.MeasurementLen(), cfg.CSWindow*cfg.CSDensity)
	lossless := bd.TotalJ()
	bd.RetxJ = retx / float64(report.Packets)
	if bd.TotalJ() <= lossless {
		t.Error("retransmission energy not reflected in the breakdown total")
	}

	// The receiver-side signal stays sample-aligned: every window is
	// either reconstructed or zero-filled.
	if got, want := rx.SamplesReceived(), sent*cfg.CSWindow; got != want {
		t.Fatalf("receiver holds %d samples, want %d", got, want)
	}
	// The healthy leads reconstruct with usable fidelity despite the
	// zero-filled gaps.
	span := rx.SamplesReceived()
	if snr := dsp.SNRdB(rec.Clean[1][:span], rx.Signal()[1]); snr < 5 {
		t.Errorf("lead 1 reconstruction SNR %.1f dB under loss, want >= 5", snr)
	}

	// Remote delineation on the reconstructed, gap-padded signal.
	dets, err := rx.Delineate()
	if err != nil {
		t.Fatal(err)
	}
	rep := delineation.Evaluate(rec, dets, delineation.DefaultTolerances())
	if se := rep.R.Se(); se < 0.9 {
		t.Errorf("remote QRS Se %.3f under loss+lead-off, want >= 0.9", se)
	}
}

// TestEndToEndLeadOffFallback closes the node-side half of the
// acceptance scenario: with two leads faulted the gated delineation
// node falls back to the one healthy lead and keeps >= 90% QRS
// sensitivity (the gateway-side half is covered above).
func TestEndToEndLeadOffFallback(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 72, Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.01}})
	faulted, _, err := link.InjectFaults(rec.Leads, rec.Fs, link.FaultConfig{
		Schedule: []link.LeadFault{
			{Lead: 0, Start: 0, End: rec.Len(), Kind: link.FaultLeadOff},
			{Lead: 2, Start: 0, End: rec.Len(), Kind: link.FaultLeadOff},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	frec := *rec
	frec.Leads = faulted
	node, err := core.NewNode(core.Config{Mode: core.ModeDelineation, GateLeads: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := node.Process(&frec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LeadsUsed) != 3 || res.LeadsUsed[0] || !res.LeadsUsed[1] || res.LeadsUsed[2] {
		t.Errorf("LeadsUsed = %v, want only lead 1", res.LeadsUsed)
	}
	dets := make([]delineation.BeatFiducials, len(res.Beats))
	for i, b := range res.Beats {
		dets[i] = b.Fiducials
	}
	rep := delineation.Evaluate(rec, dets, delineation.DefaultTolerances())
	if se := rep.R.Se(); se < 0.9 {
		t.Errorf("single-lead fallback QRS Se %.3f, want >= 0.9", se)
	}
}

package link

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"wbsn/internal/telemetry/trace"
)

func TestPacketV2RoundTrip(t *testing.T) {
	p := Packet{
		Seq:          9,
		WindowStart:  4608,
		Measurements: [][]float64{{1, -1, 0.5}, {2, -2, 0.25}},
		Trace:        trace.NewID(3, 9),
		EncodeNs:     1_234_000, // µs-aligned so the wire resolution is exact
	}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != packetVersionTraced {
		t.Fatalf("version byte %d, want %d", frame[2], packetVersionTraced)
	}
	if want := FrameBytes(2, 3) + traceExtLen; len(frame) != want {
		t.Fatalf("v2 frame length %d, want %d", len(frame), want)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != p.Trace || got.EncodeNs != p.EncodeNs {
		t.Fatalf("trace fields: got %v/%d, want %v/%d", got.Trace, got.EncodeNs, p.Trace, p.EncodeNs)
	}
	if got.Seq != p.Seq || got.WindowStart != p.WindowStart {
		t.Fatalf("header mismatch: %+v", got)
	}
	for li := range p.Measurements {
		for i, v := range p.Measurements[li] {
			if got.Measurements[li][i] != v {
				t.Fatalf("lead %d sample %d: %v != %v", li, i, got.Measurements[li][i], v)
			}
		}
	}
}

// TestPacketUntracedStaysV1 pins the compatibility contract: a packet
// without a trace ID encodes byte-identically to the version-1 format,
// so pre-v2 decoders (and the bit-neutrality digests) are unaffected.
func TestPacketUntracedStaysV1(t *testing.T) {
	p := Packet{Seq: 5, WindowStart: 2560, Measurements: [][]float64{{1, 2, 3, 4}}}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != packetVersion {
		t.Fatalf("untraced version byte %d, want %d", frame[2], packetVersion)
	}
	if len(frame) != FrameBytes(1, 4) {
		t.Fatalf("untraced frame length %d, want %d", len(frame), FrameBytes(1, 4))
	}
	// And the traced encoding of the same payload differs only by the
	// version byte, the extension block and the CRC.
	tp := p
	tp.Trace = trace.NewID(1, 5)
	tframe, err := Encode(tp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[:2], tframe[:2]) || !bytes.Equal(frame[3:headerLen], tframe[3:headerLen]) {
		t.Fatal("v2 header diverged beyond the version byte")
	}
	if !bytes.Equal(frame[headerLen:len(frame)-crcLen], tframe[headerLen+traceExtLen:len(tframe)-crcLen]) {
		t.Fatal("v2 payload bytes diverged from v1")
	}
}

func TestPacketV2ZeroTraceRejected(t *testing.T) {
	p := Packet{Seq: 1, Measurements: [][]float64{{1}}, Trace: trace.NewID(1, 1)}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out the trace ID and fix the CRC: structurally valid v2 frame
	// with the reserved untraced ID — the codec must reject it so
	// decode→encode stays an identity.
	for i := headerLen; i < headerLen+8; i++ {
		frame[i] = 0
	}
	frame = fixCRC(frame)
	if _, err := Decode(frame); !errors.Is(err, ErrCodec) {
		t.Fatalf("zero-trace v2 frame: got %v, want ErrCodec", err)
	}
}

func TestPacketEncodeNsSaturation(t *testing.T) {
	if satMicros(-5) != 0 || satMicros(0) != 0 {
		t.Fatal("negative/zero duration must clamp to 0")
	}
	if satMicros(1500) != 1 {
		t.Fatal("sub-µs truncation")
	}
	if satMicros(1<<62) != 0xffffffff {
		t.Fatal("overflow must saturate")
	}
}

// fixCRC recomputes a frame's trailing checksum after test surgery.
func fixCRC(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	body := len(out) - crcLen
	binary.BigEndian.PutUint32(out[body:], crc32.ChecksumIEEE(out[:body]))
	return out
}

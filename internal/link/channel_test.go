package link

import (
	"bytes"
	"math"
	"testing"
)

func TestChannelValidation(t *testing.T) {
	if _, err := NewChannel(ChannelConfig{LossGood: -0.1}); err != ErrChannel {
		t.Error("negative probability should fail")
	}
	if _, err := NewChannel(ChannelConfig{PGoodToBad: 1.5}); err != ErrChannel {
		t.Error("probability above 1 should fail")
	}
	if _, err := NewChannel(ChannelConfig{BERBad: math.NaN()}); err != ErrChannel {
		t.Error("NaN probability should fail")
	}
}

func TestPerfectChannelDeliversEverything(t *testing.T) {
	ch, err := NewChannel(ChannelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		out := ch.Transmit(frame)
		if len(out) != 1 || !bytes.Equal(out[0], frame) {
			t.Fatalf("transmit %d: got %d frames", i, len(out))
		}
	}
	s := ch.Stats()
	if s.Sent != 100 || s.Delivered != 100 || s.Dropped != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestChannelDeterministicPerSeed(t *testing.T) {
	cfg := ChannelConfig{
		PGoodToBad: 0.1, PBadToGood: 0.3, LossGood: 0.02, LossBad: 0.5,
		BERBad: 1e-4, PDuplicate: 0.05, PReorder: 0.05, Seed: 7,
	}
	run := func() ChannelStats {
		ch, err := NewChannel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		frame := make([]byte, 64)
		for i := 0; i < 500; i++ {
			ch.Transmit(frame)
		}
		return ch.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestChannelLossMatchesStationaryRate(t *testing.T) {
	cfg := ChannelConfig{
		PGoodToBad: 0.05, PBadToGood: 0.25, LossGood: 0.01, LossBad: 0.6, Seed: 3,
	}
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 32)
	const n = 20000
	for i := 0; i < n; i++ {
		ch.Transmit(frame)
	}
	got := float64(ch.Stats().Dropped) / n
	want := cfg.StationaryLoss()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("empirical loss %.3f, stationary %.3f", got, want)
	}
}

// TestChannelLossIsBursty verifies the Gilbert–Elliott memory: the
// probability of a drop immediately after a drop must exceed the
// marginal drop rate (a memoryless channel would make them equal).
func TestChannelLossIsBursty(t *testing.T) {
	cfg := ChannelConfig{
		PGoodToBad: 0.02, PBadToGood: 0.15, LossGood: 0.005, LossBad: 0.7, Seed: 5,
	}
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 16)
	const n = 30000
	drops := make([]bool, n)
	for i := 0; i < n; i++ {
		before := ch.Stats().Dropped
		ch.Transmit(frame)
		drops[i] = ch.Stats().Dropped > before
	}
	total, afterDrop, afterDropDrops := 0, 0, 0
	for i := 1; i < n; i++ {
		if drops[i] {
			total++
		}
		if drops[i-1] {
			afterDrop++
			if drops[i] {
				afterDropDrops++
			}
		}
	}
	marginal := float64(total) / float64(n-1)
	conditional := float64(afterDropDrops) / float64(afterDrop)
	if conditional < 2*marginal {
		t.Errorf("loss not bursty: P(drop|drop)=%.3f vs marginal %.3f", conditional, marginal)
	}
}

func TestChannelBitErrorsCorrupt(t *testing.T) {
	ch, err := NewChannel(ChannelConfig{BERGood: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 100)
	corrupted := 0
	for i := 0; i < 50; i++ {
		for _, d := range ch.Transmit(frame) {
			if !bytes.Equal(d, frame) {
				corrupted++
			}
		}
	}
	if corrupted == 0 || ch.Stats().CorruptedBits == 0 {
		t.Error("1% BER on 800-bit frames corrupted nothing")
	}
	for _, b := range frame {
		if b != 0 {
			t.Fatal("corruption aliased the caller's frame")
		}
	}
}

func TestChannelReorderAndDrain(t *testing.T) {
	ch, err := NewChannel(ChannelConfig{PReorder: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every frame is held; nothing comes out until Drain.
	if out := ch.Transmit([]byte{1}); len(out) != 0 {
		t.Fatalf("held frame delivered early: %d", len(out))
	}
	drained := ch.Drain()
	if len(drained) != 1 || drained[0][0] != 1 {
		t.Fatalf("drain returned %v", drained)
	}
	if len(ch.Drain()) != 0 {
		t.Error("second drain should be empty")
	}
}

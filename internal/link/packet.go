// Package link models the lossy body-area radio link between the
// sensor node and the gateway — the part of the paper's architecture
// the energy ladder (Figure 1) silently assumes to be perfect. It
// provides:
//
//   - a sequence-numbered packet codec with CRC-32 integrity
//     (packet.go), so corrupted frames are detected rather than
//     consumed;
//   - a deterministic Gilbert–Elliott burst-loss channel with
//     state-dependent bit errors, duplication and reordering
//     (channel.go), the canonical model for fading body-area links;
//   - a stop-and-wait ARQ sender with bounded retries and exponential
//     backoff whose every transmission attempt is charged through the
//     energy radio model (arq.go), plus a receiver-side Reassembler
//     that handles duplicates, out-of-order arrivals and declared
//     gaps;
//   - per-lead signal-fault injection — lead-off flatline, rail
//     saturation, spike artifacts (faults.go) — and a per-lead
//     signal-quality index for gating faulted electrodes out of the
//     analysis chain (sqi.go).
//
// Everything is seedable and deterministic so degraded-condition
// experiments are exactly reproducible.
package link

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"wbsn/internal/telemetry/trace"
)

// Codec errors.
var (
	// ErrCodec is returned for structurally malformed packets (bad
	// magic, impossible sizes, truncation).
	ErrCodec = errors.New("link: malformed packet")
	// ErrCRC is returned when a packet's checksum does not match its
	// contents — the frame was corrupted in flight.
	ErrCRC = errors.New("link: packet CRC mismatch")
)

// Wire-format constants. Version 1 is the original frame; version 2
// inserts a 12-byte trace extension — trace id (8) plus the node-side
// encode duration in µs (4) — between the header and the payload.
// Encode emits v2 only for traced packets, so untraced traffic is
// byte-identical to version 1 and old decoders keep working on it;
// Decode accepts both versions.
const (
	packetMagic0        = 'W'
	packetMagic1        = 'L'
	packetVersion       = 1
	packetVersionTraced = 2
	headerLen           = 14 // magic(2) version(1) leads(1) seq(4) window(4) mlen(2)
	traceExtLen         = 12 // trace(8) encode_us(4)
	crcLen              = 4
	// MaxLeads bounds the lead count a packet may carry.
	MaxLeads = 64
	// MaxMeasurements bounds the per-lead measurement count.
	MaxMeasurements = 4096
)

// Packet is one radio payload: the CS measurements (or raw samples) of
// one acquisition window for every lead, tagged with a sequence number
// so the receiver can detect duplicates, reordering and gaps.
type Packet struct {
	// Seq is the link-layer sequence number, assigned monotonically by
	// the sender.
	Seq uint32
	// WindowStart is the absolute sample index of the window's first
	// sample, so a late-joining receiver can align the stream.
	WindowStart uint32
	// Measurements holds one equal-length vector per lead.
	Measurements [][]float64
	// Trace, when nonzero, is the window's end-to-end trace ID and
	// selects the v2 frame format. The ARQ path never sets it on the
	// wire (trace bytes would change the frame length and with it the
	// bit-error channel's corruption odds — see Link.SendTraced); the
	// TCP transport embeds it freely.
	Trace trace.ID
	// EncodeNs is the node-side encode span duration carried with the
	// trace (µs resolution on the wire), letting the gateway reconstruct
	// the remote encode span without a shared clock.
	EncodeNs int64
}

// Encode serialises the packet: a fixed header, lead-major float32
// payload, and a trailing CRC-32 (IEEE) over everything before it.
func Encode(p Packet) ([]byte, error) {
	leads := len(p.Measurements)
	if leads < 1 || leads > MaxLeads {
		return nil, ErrCodec
	}
	mlen := len(p.Measurements[0])
	if mlen < 1 || mlen > MaxMeasurements {
		return nil, ErrCodec
	}
	for _, l := range p.Measurements {
		if len(l) != mlen {
			return nil, ErrCodec
		}
	}
	ext := 0
	if p.Trace != 0 {
		ext = traceExtLen
	}
	buf := make([]byte, headerLen+ext+4*leads*mlen+crcLen)
	buf[0] = packetMagic0
	buf[1] = packetMagic1
	buf[2] = packetVersion
	buf[3] = byte(leads)
	binary.BigEndian.PutUint32(buf[4:], p.Seq)
	binary.BigEndian.PutUint32(buf[8:], p.WindowStart)
	binary.BigEndian.PutUint16(buf[12:], uint16(mlen))
	off := headerLen
	if ext > 0 {
		buf[2] = packetVersionTraced
		binary.BigEndian.PutUint64(buf[off:], uint64(p.Trace))
		binary.BigEndian.PutUint32(buf[off+8:], satMicros(p.EncodeNs))
		off += ext
	}
	for _, l := range p.Measurements {
		for _, v := range l {
			binary.BigEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
			off += 4
		}
	}
	binary.BigEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf, nil
}

// Decode parses and validates one frame. Structural problems return
// ErrCodec; an intact structure with a bad checksum returns ErrCRC
// (the receiver treats both as "frame not received" and lets ARQ
// recover it).
func Decode(b []byte) (Packet, error) {
	if len(b) < headerLen+crcLen {
		return Packet{}, ErrCodec
	}
	if b[0] != packetMagic0 || b[1] != packetMagic1 {
		return Packet{}, ErrCodec
	}
	ext := 0
	switch b[2] {
	case packetVersion:
	case packetVersionTraced:
		ext = traceExtLen
	default:
		return Packet{}, ErrCodec
	}
	leads := int(b[3])
	mlen := int(binary.BigEndian.Uint16(b[12:]))
	if leads < 1 || leads > MaxLeads || mlen < 1 || mlen > MaxMeasurements {
		return Packet{}, ErrCodec
	}
	want := headerLen + ext + 4*leads*mlen + crcLen
	if len(b) != want {
		return Packet{}, ErrCodec
	}
	body := len(b) - crcLen
	if crc32.ChecksumIEEE(b[:body]) != binary.BigEndian.Uint32(b[body:]) {
		return Packet{}, ErrCRC
	}
	p := Packet{
		Seq:          binary.BigEndian.Uint32(b[4:]),
		WindowStart:  binary.BigEndian.Uint32(b[8:]),
		Measurements: make([][]float64, leads),
	}
	off := headerLen
	if ext > 0 {
		p.Trace = trace.ID(binary.BigEndian.Uint64(b[off:]))
		// A v2 frame carrying the reserved zero trace ID is malformed:
		// untraced packets canonically encode as v1 (keeps decode→encode
		// an identity for the fuzz harness).
		if p.Trace == 0 {
			return Packet{}, ErrCodec
		}
		p.EncodeNs = int64(binary.BigEndian.Uint32(b[off+8:])) * 1000
		off += ext
	}
	for li := range p.Measurements {
		l := make([]float64, mlen)
		for i := range l {
			l[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(b[off:])))
			off += 4
		}
		p.Measurements[li] = l
	}
	return p, nil
}

// FrameBytes returns the encoded size of an untraced (v1) packet with
// the given geometry — what the radio model charges per attempt. The
// ARQ path always puts v1 frames on the air, so this is the charging
// geometry regardless of tracing.
func FrameBytes(leads, measurementsPerLead int) int {
	return headerLen + 4*leads*measurementsPerLead + crcLen
}

// satMicros converts a nanosecond duration to saturating uint32
// microseconds (the wire resolution of the v2 encode-duration field).
func satMicros(ns int64) uint32 {
	if ns <= 0 {
		return 0
	}
	us := ns / 1000
	if us > 0xffffffff {
		return 0xffffffff
	}
	return uint32(us)
}

package link

import "math"

// SQIConfig parameterises the per-lead signal-quality index. The index
// is the fraction of analysis windows judged usable; a window fails
// when it is flatlined (lead-off), pinned near the front-end rail
// (saturation), or dominated by a transient far larger than its RMS
// (motion spike). These are deliberately cheap integer-friendly checks
// — the node must run them continuously.
type SQIConfig struct {
	// WindowS is the quality-decision window in seconds (default 1).
	WindowS float64
	// FlatlineRMS is the demeaned RMS (mV) below which a window counts
	// as flatlined (default 0.01 — an attached electrode sees at least
	// tens of µV of ECG).
	FlatlineRMS float64
	// RailMV and RailFrac flag saturation: a window fails when more
	// than RailFrac of its samples sit beyond ±RailMV (defaults 3.0 mV
	// and 0.05).
	RailMV   float64
	RailFrac float64
	// SpikeRatio flags transients: a window fails when its peak
	// demeaned amplitude exceeds SpikeRatio × RMS (default 8; QRS
	// complexes sit near 4–6).
	SpikeRatio float64
	// MaxAmpMV flags non-physiological excursions: a window fails when
	// its peak demeaned amplitude exceeds this (default 2.5 mV — an R
	// wave stays under ~2 mV, electrode-motion artifacts do not).
	MaxAmpMV float64
}

func (c SQIConfig) withDefaults() SQIConfig {
	out := c
	if out.WindowS <= 0 {
		out.WindowS = 1
	}
	if out.FlatlineRMS <= 0 {
		out.FlatlineRMS = 0.01
	}
	if out.RailMV <= 0 {
		out.RailMV = 3.0
	}
	if out.RailFrac <= 0 {
		out.RailFrac = 0.05
	}
	if out.SpikeRatio <= 0 {
		out.SpikeRatio = 8
	}
	if out.MaxAmpMV <= 0 {
		out.MaxAmpMV = 2.5
	}
	return out
}

// LeadSQI returns the fraction of windows of x judged usable, in
// [0, 1]. Short trailing windows count with proportional weight.
func LeadSQI(x []float64, fs float64, cfg SQIConfig) float64 {
	if len(x) == 0 || fs <= 0 {
		return 0
	}
	c := cfg.withDefaults()
	w := int(c.WindowS * fs)
	if w < 2 {
		w = 2
	}
	var good, total float64
	for start := 0; start < len(x); start += w {
		end := start + w
		if end > len(x) {
			end = len(x)
		}
		weight := float64(end-start) / float64(w)
		total += weight
		if windowUsable(x[start:end], c) {
			good += weight
		}
	}
	if total == 0 {
		return 0
	}
	return good / total
}

// windowUsable applies the three checks to one window.
func windowUsable(x []float64, c SQIConfig) bool {
	n := float64(len(x))
	mean := 0.0
	railed := 0
	for _, v := range x {
		mean += v
		if math.Abs(v) >= c.RailMV {
			railed++
		}
	}
	mean /= n
	if float64(railed)/n > c.RailFrac {
		return false
	}
	var sumsq, peak float64
	for _, v := range x {
		d := v - mean
		sumsq += d * d
		if a := math.Abs(d); a > peak {
			peak = a
		}
	}
	rms := math.Sqrt(sumsq / n)
	if rms < c.FlatlineRMS {
		return false
	}
	if peak > c.SpikeRatio*rms {
		return false
	}
	if peak > c.MaxAmpMV {
		return false
	}
	return true
}

// LeadSQIs scores every lead.
func LeadSQIs(leads [][]float64, fs float64, cfg SQIConfig) []float64 {
	out := make([]float64, len(leads))
	for li := range leads {
		out[li] = LeadSQI(leads[li], fs, cfg)
	}
	return out
}

// GoodLeads gates the leads: true where the SQI clears minSQI. When no
// lead clears the bar the single best lead stays enabled — the node
// degrades to single-lead operation rather than to silence.
func GoodLeads(leads [][]float64, fs float64, cfg SQIConfig, minSQI float64) []bool {
	sqis := LeadSQIs(leads, fs, cfg)
	out := make([]bool, len(leads))
	any := false
	for li, q := range sqis {
		if q >= minSQI {
			out[li] = true
			any = true
		}
	}
	if !any && len(leads) > 0 {
		best := 0
		for li, q := range sqis {
			if q > sqis[best] {
				best = li
			}
		}
		out[best] = true
	}
	return out
}

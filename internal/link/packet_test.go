package link

import (
	"errors"
	"math"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Seq:         42,
		WindowStart: 512 * 42,
		Measurements: [][]float64{
			{1.5, -2.25, 0, 100.125},
			{0.0078125, 3, -3, 0.5},
			{9, 8, 7, 6},
		},
	}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := FrameBytes(3, 4); len(frame) != want {
		t.Errorf("frame length %d, want %d", len(frame), want)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != p.Seq || got.WindowStart != p.WindowStart {
		t.Errorf("header mismatch: %+v", got)
	}
	for li := range p.Measurements {
		for i, v := range p.Measurements[li] {
			if got.Measurements[li][i] != v { // all values float32-exact
				t.Errorf("lead %d sample %d: %v != %v", li, i, got.Measurements[li][i], v)
			}
		}
	}
}

func TestEncodeRejectsBadGeometry(t *testing.T) {
	cases := []Packet{
		{},
		{Measurements: [][]float64{}},
		{Measurements: [][]float64{{}}},
		{Measurements: [][]float64{{1, 2}, {1}}},
		{Measurements: [][]float64{make([]float64, MaxMeasurements+1)}},
		{Measurements: make([][]float64, MaxLeads+1)},
	}
	for i, p := range cases {
		if len(p.Measurements) == MaxLeads+1 {
			for li := range p.Measurements {
				p.Measurements[li] = []float64{1}
			}
		}
		if _, err := Encode(p); !errors.Is(err, ErrCodec) {
			t.Errorf("case %d: got %v, want ErrCodec", i, err)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	p := Packet{Seq: 7, Measurements: [][]float64{{1, 2, 3}}}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation.
	if _, err := Decode(frame[:len(frame)-1]); !errors.Is(err, ErrCodec) {
		t.Errorf("truncated: got %v", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCodec) {
		t.Errorf("empty: got %v", err)
	}
	// Bad magic.
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrCodec) {
		t.Errorf("bad magic: got %v", err)
	}
	// Flipped payload bit must fail the CRC.
	bad = append([]byte(nil), frame...)
	bad[headerLen] ^= 0x10
	if _, err := Decode(bad); !errors.Is(err, ErrCRC) {
		t.Errorf("corrupted payload: got %v, want ErrCRC", err)
	}
	// Flipped CRC byte likewise.
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Decode(bad); !errors.Is(err, ErrCRC) {
		t.Errorf("corrupted crc: got %v, want ErrCRC", err)
	}
}

// FuzzPacketDecode exercises the codec against arbitrary frames: Decode
// must never panic, must reject anything whose re-encoding does not
// reproduce the input, and accepted packets must round-trip.
func FuzzPacketDecode(f *testing.F) {
	seed := Packet{Seq: 3, WindowStart: 1024, Measurements: [][]float64{{1, -1, 0.5}, {2, -2, 0.25}}}
	frame, err := Encode(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	traced := seed
	traced.Trace = 0x0000000300000003
	traced.EncodeNs = 42_000
	tframe, err := Encode(traced)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tframe)
	f.Add([]byte{})
	f.Add([]byte{'W', 'L', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	short := append([]byte(nil), frame...)
	f.Add(short[:headerLen+crcLen])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("accepted packet failed to re-encode: %v", err)
		}
		if len(re) != len(data) {
			t.Fatalf("re-encoded length %d != input %d", len(re), len(data))
		}
		// The float payload survives bit-exactly unless it held a NaN
		// (NaN payload bits are not canonical); compare field-wise.
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded packet rejected: %v", err)
		}
		if q.Seq != p.Seq || q.WindowStart != p.WindowStart || len(q.Measurements) != len(p.Measurements) {
			t.Fatal("round-trip header mismatch")
		}
		if q.Trace != p.Trace || q.EncodeNs != p.EncodeNs {
			t.Fatalf("round-trip trace mismatch: %v/%d vs %v/%d", p.Trace, p.EncodeNs, q.Trace, q.EncodeNs)
		}
		for li := range p.Measurements {
			for i := range p.Measurements[li] {
				a, b := p.Measurements[li][i], q.Measurements[li][i]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("round-trip value mismatch at lead %d sample %d: %v vs %v", li, i, a, b)
				}
			}
		}
	})
}

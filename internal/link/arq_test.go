package link

import (
	"math/rand"
	"testing"

	"wbsn/internal/telemetry"
)

// recordingSink captures the reassembled stream for inspection.
type recordingSink struct {
	windows [][]float64 // first-lead content of each consumed window
	lost    int
}

func (s *recordingSink) ConsumePacket(m [][]float64) error {
	s.windows = append(s.windows, append([]float64(nil), m[0]...))
	return nil
}

func (s *recordingSink) ConsumeLostPacket() {
	s.windows = append(s.windows, nil)
	s.lost++
}

func window(tag int) [][]float64 {
	return [][]float64{{float64(tag), float64(tag) + 0.5}}
}

func TestReassemblerInOrder(t *testing.T) {
	sink := &recordingSink{}
	ra := NewReassembler(sink)
	for i := 0; i < 5; i++ {
		if err := ra.Offer(Packet{Seq: uint32(i), Measurements: window(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.windows) != 5 || sink.lost != 0 {
		t.Fatalf("delivered %d windows, %d lost", len(sink.windows), sink.lost)
	}
	for i, w := range sink.windows {
		if w[0] != float64(i) {
			t.Errorf("window %d out of order: %v", i, w)
		}
	}
}

func TestReassemblerHandlesDuplicatesAndOutOfOrder(t *testing.T) {
	sink := &recordingSink{}
	ra := NewReassembler(sink)
	// Arrival order 0, 2, 2, 1, 0 — a reordered window, two duplicates.
	seq := []int{0, 2, 2, 1, 0}
	for _, s := range seq {
		if err := ra.Offer(Packet{Seq: uint32(s), Measurements: window(s)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.windows) != 3 || sink.lost != 0 {
		t.Fatalf("delivered %d windows (%d lost), want 3", len(sink.windows), sink.lost)
	}
	for i, w := range sink.windows {
		if w[0] != float64(i) {
			t.Errorf("window %d delivered out of order: %v", i, w)
		}
	}
	st := ra.Stats()
	if st.Duplicates != 2 || st.Buffered != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestReassemblerDeclareLostFillsGap(t *testing.T) {
	sink := &recordingSink{}
	ra := NewReassembler(sink)
	if err := ra.Offer(Packet{Seq: 0, Measurements: window(0)}); err != nil {
		t.Fatal(err)
	}
	if err := ra.Offer(Packet{Seq: 2, Measurements: window(2)}); err != nil {
		t.Fatal(err)
	}
	if err := ra.DeclareLost(1); err != nil {
		t.Fatal(err)
	}
	if len(sink.windows) != 3 || sink.lost != 1 {
		t.Fatalf("windows %d lost %d", len(sink.windows), sink.lost)
	}
	if sink.windows[1] != nil || sink.windows[2][0] != 2 {
		t.Error("gap not filled in sequence position 1")
	}
	// A late copy of the filled window is discarded, not re-delivered.
	if err := ra.Offer(Packet{Seq: 1, Measurements: window(1)}); err != nil {
		t.Fatal(err)
	}
	if len(sink.windows) != 3 {
		t.Error("late arrival after gap fill was delivered")
	}
	if ra.Stats().Late != 1 {
		t.Errorf("late count %d", ra.Stats().Late)
	}
}

func TestReassemblerFarJumpBoundsBuffer(t *testing.T) {
	sink := &recordingSink{}
	ra := NewReassembler(sink)
	if err := ra.Offer(Packet{Seq: uint32(reorderWindow + 5), Measurements: window(1)}); err != nil {
		t.Fatal(err)
	}
	if sink.lost == 0 {
		t.Error("far jump should declare intermediate windows lost")
	}
	if len(ra.pending) > reorderWindow {
		t.Errorf("buffer unbounded: %d", len(ra.pending))
	}
}

func TestLinkDeliversOverLossyChannel(t *testing.T) {
	ch, err := NewChannel(ChannelConfig{
		PGoodToBad: 0.05, PBadToGood: 0.3, LossGood: 0.05, LossBad: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	l, err := NewLink(ARQConfig{Seed: 1}, ch, sink)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 200
	for i := 0; i < packets; i++ {
		if _, err := l.SendMeasurements(i*2, window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := l.Report()
	if r.Packets != packets {
		t.Fatalf("packets %d", r.Packets)
	}
	// ~13% stationary frame loss with 4 retries: essentially everything
	// must get through.
	if r.DeliveryRatio() < 0.98 {
		t.Errorf("delivery ratio %.3f with ARQ", r.DeliveryRatio())
	}
	// The stream stays aligned: every window accounted for, in order.
	if got := len(sink.windows); got != packets {
		t.Errorf("sink saw %d windows, want %d", got, packets)
	}
	for i, w := range sink.windows {
		if w != nil && w[0] != float64(i) {
			t.Errorf("window %d out of order: %v", i, w)
		}
	}
	// Retransmissions happened and were charged.
	if r.Retransmissions == 0 {
		t.Error("lossy channel produced no retransmissions")
	}
	if r.EnergyJ <= r.IdealEnergyJ {
		t.Errorf("retransmission energy not charged: %.3e vs %.3e", r.EnergyJ, r.IdealEnergyJ)
	}
	if r.RetransmitEnergyJ() <= 0 || r.BackoffS <= 0 {
		t.Error("retransmit energy / backoff not accumulated")
	}
}

func TestLinkAckLossProducesDuplicates(t *testing.T) {
	ch, err := NewChannel(ChannelConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	l, err := NewLink(ARQConfig{PAckLoss: 0.3, Seed: 6}, ch, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := l.SendMeasurements(i, window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := l.Report()
	if r.AcksLost == 0 {
		t.Fatal("no acks lost at 30% ack loss")
	}
	// Lost acks retransmit windows the receiver already consumed; the
	// reassembler must absorb them as duplicates and deliver each
	// window exactly once.
	if r.Reassembly.Duplicates == 0 {
		t.Error("duplicates not observed at the reassembler")
	}
	if len(sink.windows) != 100 || sink.lost != 0 {
		t.Errorf("sink saw %d windows (%d lost), want exactly 100", len(sink.windows), sink.lost)
	}
}

func TestLinkGivesUpAndDeclaresGap(t *testing.T) {
	// A channel stuck in a fully-lossy bad state: every window exhausts
	// its retries and must surface as a zero-filled gap, not an error.
	ch, err := NewChannel(ChannelConfig{PGoodToBad: 1, LossBad: 1, PBadToGood: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	l, err := NewLink(ARQConfig{MaxRetries: 2, Seed: 3}, ch, sink)
	if err != nil {
		t.Fatal(err)
	}
	// First frame goes out in the Good state and survives; the rest die.
	for i := 0; i < 10; i++ {
		if _, err := l.SendMeasurements(i, window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := l.Report()
	if r.Lost < 9 {
		t.Errorf("lost %d windows, want >=9", r.Lost)
	}
	if r.Attempts != r.Packets+r.Retransmissions {
		t.Errorf("attempt accounting: %d != %d+%d", r.Attempts, r.Packets, r.Retransmissions)
	}
	if sink.lost != r.Lost || len(sink.windows) != 10 {
		t.Errorf("gaps not declared to sink: %d vs %d", sink.lost, r.Lost)
	}
}

func TestLinkValidation(t *testing.T) {
	ch, _ := NewChannel(ChannelConfig{})
	if _, err := NewLink(ARQConfig{}, nil, &recordingSink{}); err != ErrLink {
		t.Error("nil channel should fail")
	}
	if _, err := NewLink(ARQConfig{}, ch, nil); err != ErrLink {
		t.Error("nil sink should fail")
	}
	if _, err := NewLink(ARQConfig{PAckLoss: 2}, ch, &recordingSink{}); err != ErrLink {
		t.Error("bad ack loss should fail")
	}
	l, err := NewLink(ARQConfig{}, ch, &recordingSink{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.SendMeasurements(0, nil); err == nil {
		t.Error("empty measurements should fail to encode")
	}
}

func TestLinkDeterministic(t *testing.T) {
	run := func() Report {
		ch, err := NewChannel(ChannelConfig{PGoodToBad: 0.1, PBadToGood: 0.2, LossBad: 0.6, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		sink := &recordingSink{}
		l, err := NewLink(ARQConfig{PAckLoss: 0.1, Seed: 22}, ch, sink)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 120; i++ {
			m := [][]float64{{rng.NormFloat64(), rng.NormFloat64()}}
			if _, err := l.SendMeasurements(i, m); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return l.Report()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seeds diverged:\n%+v\n%+v", a, b)
	}
}

// TestLinkTelemetryMirrorsReport runs a lossy session with the metric
// family attached and checks every live counter agrees with the
// authoritative Report — and that attaching telemetry does not perturb
// the session (same report as an identical uninstrumented run).
func TestLinkTelemetryMirrorsReport(t *testing.T) {
	run := func(attach bool) (Report, *telemetry.LinkMetrics) {
		ch, err := NewChannel(ChannelConfig{
			PGoodToBad: 0.08, PBadToGood: 0.25, LossGood: 0.05, LossBad: 0.6, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLink(ARQConfig{MaxRetries: 2, PAckLoss: 0.05, Seed: 5}, ch, &recordingSink{})
		if err != nil {
			t.Fatal(err)
		}
		var tm *telemetry.LinkMetrics
		if attach {
			reg := telemetry.NewRegistry()
			tm = telemetry.NewLinkMetrics(reg, telemetry.NewStageSet(reg, NewTracerForTest()))
			l.SetTelemetry(tm)
		}
		for i := 0; i < 150; i++ {
			if _, err := l.SendMeasurements(i*2, window(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return l.Report(), tm
	}

	r, tm := run(true)
	checks := []struct {
		name string
		got  uint64
		want int
	}{
		{"packets", tm.Packets.Value(), r.Packets},
		{"delivered", tm.Delivered.Value(), r.Delivered},
		{"lost", tm.Lost.Value(), r.Lost},
		{"attempts", tm.Attempts.Value(), r.Attempts},
		{"retransmissions", tm.Retransmissions.Value(), r.Retransmissions},
		{"acks_lost", tm.AcksLost.Value(), r.AcksLost},
	}
	for _, c := range checks {
		if c.got != uint64(c.want) {
			t.Errorf("telemetry %s %d, report says %d", c.name, c.got, c.want)
		}
	}
	// Every attempt saw exactly one channel state.
	if gb := tm.FramesGood.Value() + tm.FramesBad.Value(); gb != uint64(r.Attempts) {
		t.Errorf("GE occupancy %d frames, want %d attempts", gb, r.Attempts)
	}
	if r.Lost > 0 && tm.FramesBad.Value() == 0 {
		t.Error("losses occurred but no attempt sampled the bad state")
	}
	// The energy ledger matches the report to float tolerance.
	if got := tm.RadioEnergyJ.Value(); got < r.EnergyJ*0.999 || got > r.EnergyJ*1.001 {
		t.Errorf("radio energy %.6e, report %.6e", got, r.EnergyJ)
	}
	if tm.PacketMicroJ.Count() != uint64(r.Packets) || tm.PacketAttempts.Count() != uint64(r.Packets) {
		t.Error("per-packet histograms incomplete")
	}
	if tm.Stages.Stage(telemetry.StageLink).Count() != uint64(r.Packets) {
		t.Error("link stage span count != packets")
	}

	// Pure observation: the instrumented and bare sessions are identical.
	bare, _ := run(false)
	if bare != r {
		t.Errorf("telemetry changed link behaviour:\nwith:    %+v\nwithout: %+v", r, bare)
	}
}

// NewTracerForTest builds a small tracer without importing the sizing
// constant.
func NewTracerForTest() *telemetry.Tracer { return telemetry.NewTracer(256) }

package link

import (
	"errors"
	"math/rand"
	"time"

	"wbsn/internal/energy"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// ErrLink is returned for invalid link usage or configuration.
var ErrLink = errors.New("link: invalid link configuration")

// Sink is the receiver-side consumer of the reassembled packet stream.
// gateway.Receiver satisfies it: delivered windows are reconstructed,
// declared gaps are zero-filled so downstream indices stay aligned.
type Sink interface {
	ConsumePacket(measurements [][]float64) error
	ConsumeLostPacket()
}

// TracedSink is the optional trace-aware extension of Sink: when the
// sink implements it, windows carrying a trace ID are delivered through
// ConsumePacketTraced so the receiver can stitch its decode spans onto
// the window's tree. encodeNs > 0 carries a wire-reported node encode
// duration (zero when the node records into the same ring in-process).
type TracedSink interface {
	ConsumePacketTraced(measurements [][]float64, tid trace.ID, encodeNs int64) error
}

// ReassemblyStats counts the receiver-side stream repair work.
type ReassemblyStats struct {
	// Delivered counts packets handed to the sink in order.
	Delivered int
	// Duplicates counts discarded re-arrivals of already-consumed
	// sequence numbers.
	Duplicates int
	// Late counts arrivals for windows already declared lost and
	// zero-filled (released by channel reordering after ARQ gave up).
	Late int
	// Filled counts gaps zero-filled via the sink's ConsumeLostPacket.
	Filled int
	// Buffered counts packets that arrived ahead of a missing one and
	// waited in the reorder buffer.
	Buffered int
}

// reorderWindow bounds the reassembler's buffer of future packets:
// jumping more than this many sequence numbers ahead declares the
// intervening windows lost rather than waiting forever.
const reorderWindow = 32

// Reassembler restores packet order for a Sink: in-order packets pass
// straight through, duplicates are discarded, out-of-order arrivals
// wait in a bounded buffer, and gaps — declared by the ARQ sender or
// implied by the buffer bound — are zero-filled so the reconstructed
// signal keeps its sample alignment.
type Reassembler struct {
	sink Sink
	// tsink is sink's TracedSink view when it has one (resolved once at
	// construction; the type assertion stays off the delivery path).
	tsink   TracedSink
	next    uint32
	pending map[uint32]Packet
	stats   ReassemblyStats
}

// NewReassembler builds a reassembler expecting sequence number 0
// first.
func NewReassembler(sink Sink) *Reassembler {
	ra := &Reassembler{sink: sink, pending: make(map[uint32]Packet)}
	ra.tsink, _ = sink.(TracedSink)
	return ra
}

// Stats returns the accumulated reassembly statistics.
func (ra *Reassembler) Stats() ReassemblyStats { return ra.stats }

// NextSeq returns the next sequence number the reassembler will
// deliver.
func (ra *Reassembler) NextSeq() uint32 { return ra.next }

// Offer hands the reassembler one decoded packet in arrival order.
func (ra *Reassembler) Offer(p Packet) error {
	if p.Seq < ra.next {
		ra.stats.Duplicates++
		ra.stats.Late++
		return nil
	}
	if _, dup := ra.pending[p.Seq]; dup {
		ra.stats.Duplicates++
		return nil
	}
	if p.Seq == ra.next {
		if err := ra.deliver(p); err != nil {
			return err
		}
		return ra.drain()
	}
	ra.pending[p.Seq] = p
	ra.stats.Buffered++
	// A packet far ahead of the expected one means the missing windows
	// are not coming: declare them lost and catch up.
	if p.Seq-ra.next >= reorderWindow {
		for ra.next < p.Seq-reorderWindow/2 {
			if _, ok := ra.pending[ra.next]; !ok {
				ra.fill()
			}
			if err := ra.drain(); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeclareLost tells the reassembler the sender gave up on seq: if it is
// the next expected window it is zero-filled immediately, otherwise the
// declaration is a no-op (the gap logic catches it).
func (ra *Reassembler) DeclareLost(seq uint32) error {
	if seq != ra.next {
		return nil
	}
	ra.fill()
	return ra.drain()
}

// Flush zero-fills any remaining gaps so every buffered future packet
// is delivered (end of transmission).
func (ra *Reassembler) Flush() error {
	for len(ra.pending) > 0 {
		if _, ok := ra.pending[ra.next]; !ok {
			ra.fill()
		}
		if err := ra.drain(); err != nil {
			return err
		}
	}
	return nil
}

func (ra *Reassembler) deliver(p Packet) error {
	var err error
	if p.Trace != 0 && ra.tsink != nil {
		err = ra.tsink.ConsumePacketTraced(p.Measurements, p.Trace, p.EncodeNs)
	} else {
		err = ra.sink.ConsumePacket(p.Measurements)
	}
	if err != nil {
		return err
	}
	ra.stats.Delivered++
	ra.next++
	return nil
}

func (ra *Reassembler) fill() {
	ra.sink.ConsumeLostPacket()
	ra.stats.Filled++
	ra.next++
}

func (ra *Reassembler) drain() error {
	for {
		p, ok := ra.pending[ra.next]
		if !ok {
			return nil
		}
		delete(ra.pending, ra.next)
		if err := ra.deliver(p); err != nil {
			return err
		}
	}
}

// ARQConfig parameterises the stop-and-wait sender.
type ARQConfig struct {
	// MaxRetries is the number of retransmissions after the first
	// attempt before the window is declared lost (default 4).
	MaxRetries int
	// BackoffBaseS is the wait before the first retransmission
	// (default 2 ms); successive waits multiply by BackoffFactor
	// (default 2), the exponential backoff of contention MACs.
	BackoffBaseS  float64
	BackoffFactor float64
	// PAckLoss is the probability that a correctly received frame's
	// acknowledgement is lost on the reverse path — the sender
	// retransmits a window the receiver already has, producing the
	// duplicates the reassembler must absorb.
	PAckLoss float64
	// Radio prices every transmission attempt; the zero value uses
	// energy.DefaultRadio.
	Radio energy.RadioModel
	// Seed drives the ack-loss randomness.
	Seed int64
}

func (c ARQConfig) withDefaults() ARQConfig {
	out := c
	if out.MaxRetries <= 0 {
		out.MaxRetries = 4
	}
	if out.BackoffBaseS <= 0 {
		out.BackoffBaseS = 2e-3
	}
	if out.BackoffFactor <= 0 {
		out.BackoffFactor = 2
	}
	if out.Radio.BitrateBps == 0 {
		out.Radio = energy.DefaultRadio()
	}
	return out
}

// Report summarises one link session: delivery outcome, the radio
// energy actually spent (every retransmission charged), and the
// receiver-side repair statistics.
type Report struct {
	// Packets is the number of windows offered to the link.
	Packets int
	// Delivered counts windows acknowledged within the retry budget.
	Delivered int
	// Lost counts windows dropped after exhausting retries.
	Lost int
	// Attempts is the total number of transmission attempts.
	Attempts int
	// Retransmissions is Attempts minus first attempts.
	Retransmissions int
	// AcksLost counts deliveries whose acknowledgement was lost.
	AcksLost int
	// EnergyJ is the radio energy spent across all attempts.
	EnergyJ float64
	// IdealEnergyJ is the energy a lossless link would have spent (one
	// attempt per packet) — the retransmission overhead is
	// EnergyJ − IdealEnergyJ.
	IdealEnergyJ float64
	// BackoffS is the accumulated retransmission backoff latency.
	BackoffS float64
	// Reassembly and Channel expose the lower layers' counters.
	Reassembly ReassemblyStats
	Channel    ChannelStats
}

// DeliveryRatio returns Delivered/Packets (1 for an idle link).
func (r Report) DeliveryRatio() float64 {
	if r.Packets == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Packets)
}

// RetransmitEnergyJ returns the energy spent beyond the lossless
// baseline.
func (r Report) RetransmitEnergyJ() float64 { return r.EnergyJ - r.IdealEnergyJ }

// tidRingSize bounds the in-flight seq→trace-ID map; it must exceed
// the reassembler's reorderWindow so any frame the channel can still
// release finds its ID.
const tidRingSize = 64

// tidEntry maps one in-flight sequence number to its trace identity.
type tidEntry struct {
	seq uint32
	id  trace.ID
}

// Link ties a sender-side ARQ, a Channel and a receiver-side
// Reassembler into one simulated radio hop.
type Link struct {
	cfg    ARQConfig
	ch     *Channel
	ra     *Reassembler
	rng    *rand.Rand
	seq    uint32
	report Report
	// tel, when set, mirrors the Report counters into the live metric
	// registry and prices every packet into the energy histograms. Pure
	// observation: attaching it never changes delivery behaviour.
	tel *telemetry.LinkMetrics
	// trRing, when set, receives the per-window link span. Trace IDs are
	// never put on the air here — a trace extension would lengthen the
	// frame and change the bit-error channel's corruption odds, breaking
	// bit-neutrality — so tids ride this in-process map keyed by
	// sequence number and are restored onto decoded frames.
	trRing *trace.Ring
	tids   [tidRingSize]tidEntry
}

// SetTelemetry attaches (or detaches, with nil) the link metric family.
func (l *Link) SetTelemetry(tm *telemetry.LinkMetrics) { l.tel = tm }

// SetTrace attaches (or detaches, with nil) the window-trace ring the
// link records its ARQ spans into. Observation only: the wire frames
// and delivery outcomes are byte-identical either way.
func (l *Link) SetTrace(r *trace.Ring) { l.trRing = r }

// traceFor returns the trace identity of an in-flight sequence number
// (zero entry when untraced or already recycled).
func (l *Link) traceFor(seq uint32) tidEntry {
	e := l.tids[seq%tidRingSize]
	if e.id == 0 || e.seq != seq {
		return tidEntry{}
	}
	return e
}

// restoreTrace re-stamps a decoded wire frame with its in-process trace
// identity before it reaches the reassembler.
func (l *Link) restoreTrace(rx *Packet) {
	if l.trRing == nil || rx.Trace != 0 {
		return
	}
	if e := l.traceFor(rx.Seq); e.id != 0 {
		rx.Trace, rx.EncodeNs = e.id, 0
	}
}

// NewLink builds a link over the given channel delivering to sink.
func NewLink(cfg ARQConfig, ch *Channel, sink Sink) (*Link, error) {
	if ch == nil || sink == nil {
		return nil, ErrLink
	}
	c := cfg.withDefaults()
	if c.PAckLoss != c.PAckLoss || c.PAckLoss < 0 || c.PAckLoss > 1 {
		return nil, ErrLink
	}
	return &Link{
		cfg: c,
		ch:  ch,
		ra:  NewReassembler(sink),
		rng: rand.New(rand.NewSource(c.Seed)),
	}, nil
}

// SendMeasurements packetises one window's per-lead measurements and
// runs the ARQ delivery. It reports whether the window was delivered
// (false means the retry budget was exhausted and the receiver
// zero-filled the gap); the error channel is reserved for sink
// failures.
func (l *Link) SendMeasurements(windowStart int, measurements [][]float64) (bool, error) {
	return l.send(windowStart, 0, measurements)
}

// SendTraced is SendMeasurements for a window carrying a trace ID: the
// ARQ span (attempts, radio energy) is recorded under tid into the
// attached trace ring. The wire frames stay v1 — byte-identical to an
// untraced send — so tracing cannot perturb the channel's per-bit
// corruption odds; the tid travels in-process and is restored onto
// decoded frames before reassembly.
func (l *Link) SendTraced(windowStart int, tid trace.ID, measurements [][]float64) (bool, error) {
	return l.send(windowStart, tid, measurements)
}

func (l *Link) send(windowStart int, tid trace.ID, measurements [][]float64) (bool, error) {
	p := Packet{Seq: l.seq, WindowStart: uint32(windowStart), Measurements: measurements}
	l.seq++
	frame, err := Encode(p)
	if err != nil {
		return false, err
	}
	traced := l.trRing != nil && tid != 0
	if traced {
		l.tids[p.Seq%tidRingSize] = tidEntry{seq: p.Seq, id: tid}
	}
	l.report.Packets++
	l.report.IdealEnergyJ += l.cfg.Radio.TxEnergyJ(len(frame))
	var t0 time.Time
	if l.tel != nil || traced {
		t0 = time.Now()
	}
	if tm := l.tel; tm != nil {
		tm.Packets.Inc()
	}
	packetEnergyJ := 0.0
	attempts := 0
	backoff := l.cfg.BackoffBaseS
	for attempt := 0; attempt <= l.cfg.MaxRetries; attempt++ {
		l.report.Attempts++
		attempts++
		if attempt > 0 {
			l.report.Retransmissions++
			l.report.BackoffS += backoff
			backoff *= l.cfg.BackoffFactor
		}
		attemptJ := l.cfg.Radio.TxEnergyJ(len(frame))
		l.report.EnergyJ += attemptJ
		packetEnergyJ += attemptJ
		if tm := l.tel; tm != nil {
			tm.Attempts.Inc()
			if attempt > 0 {
				tm.Retransmissions.Inc()
			}
			// Sample the Gilbert–Elliott state the attempt is about to
			// see — the occupancy split of radio spend across channel
			// conditions.
			if l.ch.Bad() {
				tm.FramesBad.Inc()
			} else {
				tm.FramesGood.Inc()
			}
		}
		out := l.ch.Transmit(frame)
		if traced && len(out) > 0 {
			// The offer below can complete the window's delivery (and
			// publish its tree), so the cumulative link span must be in the
			// ring first. Later attempts simply overwrite it.
			l.trRing.RecordLink(tid, t0.UnixNano(), int64(time.Since(t0)), attempts, uint64(packetEnergyJ*1e9))
		}
		acked := false
		for _, d := range out {
			rx, err := Decode(d)
			if err != nil {
				continue // corrupted or stale garbage: no ack
			}
			l.restoreTrace(&rx)
			if err := l.ra.Offer(rx); err != nil {
				return false, err
			}
			// Only an intact copy of *this* window acknowledges it; a
			// reordered older frame released now does not.
			if rx.Seq != p.Seq {
				continue
			}
			if l.cfg.PAckLoss > 0 && l.rng.Float64() < l.cfg.PAckLoss {
				l.report.AcksLost++
				if tm := l.tel; tm != nil {
					tm.AcksLost.Inc()
				}
				continue
			}
			acked = true
		}
		if acked {
			l.report.Delivered++
			l.finishPacket(windowStart, t0, packetEnergyJ, attempts, true)
			return true, nil
		}
	}
	l.report.Lost++
	if traced {
		// Final span for a window the sender gave up on — it may still be
		// released by channel reordering and delivered late.
		l.trRing.RecordLink(tid, t0.UnixNano(), int64(time.Since(t0)), attempts, uint64(packetEnergyJ*1e9))
	}
	l.finishPacket(windowStart, t0, packetEnergyJ, attempts, false)
	if err := l.ra.DeclareLost(p.Seq); err != nil {
		return false, err
	}
	return false, nil
}

// finishPacket settles one window's telemetry: outcome counter, the
// per-packet energy and attempt distributions, and the link-stage span.
func (l *Link) finishPacket(windowStart int, t0 time.Time, energyJ float64, attempts int, delivered bool) {
	tm := l.tel
	if tm == nil {
		return
	}
	if delivered {
		tm.Delivered.Inc()
	} else {
		tm.Lost.Inc()
	}
	tm.RadioEnergyJ.Add(energyJ)
	tm.PacketMicroJ.Observe(uint64(energyJ * 1e6))
	tm.PacketAttempts.Observe(uint64(attempts))
	tm.Stages.Record(telemetry.StageLink, int64(windowStart), t0.UnixNano(), int64(time.Since(t0)))
}

// Close drains the channel's reordering stage and the reassembler so
// every recoverable window reaches the sink.
func (l *Link) Close() error {
	for _, d := range l.ch.Drain() {
		rx, err := Decode(d)
		if err != nil {
			continue
		}
		l.restoreTrace(&rx)
		if err := l.ra.Offer(rx); err != nil {
			return err
		}
	}
	return l.ra.Flush()
}

// Report returns the session summary with the lower layers' statistics
// filled in.
func (l *Link) Report() Report {
	r := l.report
	r.Reassembly = l.ra.Stats()
	r.Channel = l.ch.Stats()
	return r
}

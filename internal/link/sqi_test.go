package link

import (
	"errors"
	"testing"

	"wbsn/internal/ecg"
)

func cleanLeads(t *testing.T, seed int64, dur float64) (*ecg.Record, [][]float64) {
	t.Helper()
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: dur, Noise: ecg.NoiseConfig{EMG: 0.01}})
	return rec, rec.Leads
}

func TestLeadSQIOnCleanECG(t *testing.T) {
	rec, leads := cleanLeads(t, 31, 20)
	for li := range leads {
		if q := LeadSQI(leads[li], rec.Fs, SQIConfig{}); q < 0.9 {
			t.Errorf("clean lead %d SQI %.2f, want >= 0.9", li, q)
		}
	}
}

func TestLeadSQIFlagsFaults(t *testing.T) {
	rec, leads := cleanLeads(t, 32, 20)
	n := rec.Len()
	cases := []struct {
		name  string
		fault LeadFault
	}{
		{"lead-off", LeadFault{Lead: 1, Start: 0, End: n, Kind: FaultLeadOff}},
		{"saturation", LeadFault{Lead: 1, Start: 0, End: n, Kind: FaultSaturation, Level: 3.3}},
	}
	for _, tc := range cases {
		faulted, _, err := InjectFaults(leads, rec.Fs, FaultConfig{Schedule: []LeadFault{tc.fault}})
		if err != nil {
			t.Fatal(err)
		}
		if q := LeadSQI(faulted[1], rec.Fs, SQIConfig{}); q > 0.1 {
			t.Errorf("%s lead SQI %.2f, want near 0", tc.name, q)
		}
		// Other leads untouched.
		if q := LeadSQI(faulted[0], rec.Fs, SQIConfig{}); q < 0.9 {
			t.Errorf("%s: untouched lead scored %.2f", tc.name, q)
		}
	}
}

func TestLeadSQIPartialFault(t *testing.T) {
	rec, leads := cleanLeads(t, 33, 30)
	n := rec.Len()
	// Lead off for 40% of the record: SQI should land near 0.6.
	faulted, _, err := InjectFaults(leads, rec.Fs, FaultConfig{
		Schedule: []LeadFault{{Lead: 0, Start: 0, End: 2 * n / 5, Kind: FaultLeadOff}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := LeadSQI(faulted[0], rec.Fs, SQIConfig{})
	if q < 0.45 || q > 0.75 {
		t.Errorf("40%% lead-off SQI %.2f, want ~0.6", q)
	}
}

func TestGoodLeadsGatesAndKeepsBest(t *testing.T) {
	rec, leads := cleanLeads(t, 34, 20)
	n := rec.Len()
	faulted, _, err := InjectFaults(leads, rec.Fs, FaultConfig{
		Schedule: []LeadFault{{Lead: 2, Start: 0, End: n, Kind: FaultSaturation, Level: 3.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mask := GoodLeads(faulted, rec.Fs, SQIConfig{}, 0.7)
	if !mask[0] || !mask[1] || mask[2] {
		t.Errorf("gating mask %v, want [true true false]", mask)
	}
	// All leads dead: the least-bad one must stay enabled.
	allOff, _, err := InjectFaults(leads, rec.Fs, FaultConfig{
		Schedule: []LeadFault{
			{Lead: 0, Start: 0, End: n, Kind: FaultLeadOff},
			{Lead: 1, Start: 0, End: n, Kind: FaultLeadOff},
			{Lead: 2, Start: 0, End: n / 2, Kind: FaultLeadOff},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mask = GoodLeads(allOff, rec.Fs, SQIConfig{}, 0.7)
	count := 0
	for _, m := range mask {
		if m {
			count++
		}
	}
	if count != 1 || !mask[2] {
		t.Errorf("all-bad gating %v, want only the least-faulted lead", mask)
	}
}

func TestInjectFaultsDoesNotMutateInput(t *testing.T) {
	rec, leads := cleanLeads(t, 35, 10)
	before := append([]float64(nil), leads[0]...)
	_, _, err := InjectFaults(leads, rec.Fs, FaultConfig{
		Schedule: []LeadFault{{Lead: 0, Start: 0, End: rec.Len(), Kind: FaultLeadOff}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if leads[0][i] != before[i] {
			t.Fatal("InjectFaults mutated its input")
		}
	}
}

func TestInjectFaultsValidation(t *testing.T) {
	rec, leads := cleanLeads(t, 36, 5)
	bad := []FaultConfig{
		{Schedule: []LeadFault{{Lead: 9, Start: 0, End: 10}}},
		{Schedule: []LeadFault{{Lead: 0, Start: -1, End: 10}}},
		{Schedule: []LeadFault{{Lead: 0, Start: 10, End: 5}}},
		{Schedule: []LeadFault{{Lead: 0, Start: 0, End: rec.Len() + 1}}},
	}
	for i, cfg := range bad {
		if _, _, err := InjectFaults(leads, rec.Fs, cfg); !errors.Is(err, ErrFault) {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, _, err := InjectFaults(nil, rec.Fs, FaultConfig{}); !errors.Is(err, ErrFault) {
		t.Error("empty leads accepted")
	}
}

func TestRandomFaultEpisodesDeterministic(t *testing.T) {
	rec, leads := cleanLeads(t, 37, 60)
	cfg := FaultConfig{LeadOffRate: 2, SpikeRate: 4, Seed: 99}
	_, s1, err := InjectFaults(leads, rec.Fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := InjectFaults(leads, rec.Fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) == 0 {
		t.Fatal("rates produced no episodes in 60 s")
	}
	if len(s1) != len(s2) {
		t.Fatalf("schedules differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("episode %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

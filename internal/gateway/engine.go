package gateway

// The reconstruction engine parallelises the gateway's dominant cost —
// CS reconstruction, which ref [5] runs in real time on a smartphone —
// across worker goroutines. Reconstruction is a pure function of the
// measurements (the decoder holds only immutable derived state and
// per-call pooled scratch), so windows decoded concurrently are bit
// identical to serial decoding; the engine adds ordering on top so
// callers see results in submission order regardless of which worker
// finished first.
//
// Worker model: a fixed pool of Workers goroutines shares one bounded
// job queue. Each worker owns a cloned decoder (same sensing matrix and
// derived constants, private scratch pool) so hot-path buffers never
// migrate between cores. Submit blocks when the queue is full — the
// queue bound is the backpressure mechanism, no job is ever dropped.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wbsn/internal/cs"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// EngineConfig sizes the worker pool.
type EngineConfig struct {
	// Workers is the goroutine count; 0 selects GOMAXPROCS.
	Workers int
	// Queue is the bounded job-queue depth; 0 selects 2*Workers*Batch.
	Queue int
	// Batch is the most queued windows one worker dispatch reconstructs
	// in a single structure-of-arrays solver pass (cs.Reconstruct*Batch).
	// 0 or 1 keeps the sequential one-window-per-dispatch path. Batched
	// dispatch is opportunistic — a worker takes whatever is queued up to
	// Batch, it never idles waiting for a full batch — and per window the
	// output is bit-identical to the sequential path at every fill level.
	Batch int
	// BatchWait bounds how long a worker holding a partial batch waits
	// for more windows before dispatching it; 0 dispatches immediately
	// with whatever the queue held (greedy-only formation). A small wait
	// trades first-window latency for fuller batches when submitters are
	// bursty but not saturating.
	BatchWait time.Duration
	// Metrics, when set, receives queue depth, worker utilisation and
	// decode latency. Pure observation — reconstruction output is
	// bit-identical with or without it.
	Metrics *telemetry.GatewayMetrics
}

func (c EngineConfig) withDefaults() EngineConfig {
	out := c
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Batch <= 0 {
		out.Batch = 1
	}
	if out.Queue <= 0 {
		out.Queue = 2 * out.Workers * out.Batch
	}
	return out
}

// Job is one submitted reconstruction window. Wait blocks until a
// worker has decoded it.
type Job struct {
	measurements [][]float64
	leads        [][]float64
	err          error
	seq          uint64
	done         chan struct{}
	// ws, when non-nil, warm-starts the solve from (and feeds back into)
	// the submitting stream's carried coefficients. The caller must not
	// have another job with the same ws in flight — warm windows of one
	// stream are sequential by construction.
	ws    *cs.WarmState
	stats cs.SolveStats
	// tid/tring, when set, receive the window's queue-wait and decode
	// spans; submitNs anchors the queue wait.
	tid      trace.ID
	tring    *trace.Ring
	submitNs int64
}

// Wait blocks until the job is decoded and returns the reconstructed
// leads (or the decode error).
func (j *Job) Wait() ([][]float64, error) {
	<-j.done
	return j.leads, j.err
}

// Stats returns the solve's convergence counters; valid after Wait.
func (j *Job) Stats() cs.SolveStats {
	<-j.done
	return j.stats
}

// Engine fans CS windows across a pool of workers, each holding its own
// decoder clone. All methods are safe for concurrent use; results are
// delivered per job, so callers that need stream order wait on jobs in
// submission order (DecodeWindows does exactly that).
type Engine struct {
	cfg  Config
	ecfg EngineConfig
	m    int
	jobs chan *Job
	wg   sync.WaitGroup
	// mu serialises Submit against Close: Submit holds the read lock
	// across its channel send so Close (write lock) cannot close the
	// queue under an in-flight send.
	mu     sync.RWMutex
	closed bool
	seq    atomic.Uint64
	tel    *telemetry.GatewayMetrics
}

// NewEngine builds a worker pool mirroring the given gateway Config.
// Every worker regenerates the shared sensing matrix from the seed and
// clones the derived solver state.
func NewEngine(cfg Config, ecfg EngineConfig) (*Engine, error) {
	c := cfg.withDefaults()
	base, m, err := c.buildDecoder()
	if err != nil {
		return nil, err
	}
	ec := ecfg.withDefaults()
	e := &Engine{cfg: c, ecfg: ec, m: m, jobs: make(chan *Job, ec.Queue), tel: ec.Metrics}
	if tm := e.tel; tm != nil {
		tm.Workers.Set(int64(ec.Workers))
	}
	for w := 0; w < ec.Workers; w++ {
		dec := base
		if w > 0 {
			dec = base.Clone()
		}
		e.wg.Add(1)
		go e.worker(dec)
	}
	return e, nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.ecfg.Workers }

func (e *Engine) worker(dec *cs.Decoder) {
	defer e.wg.Done()
	maxB := e.ecfg.Batch
	batch := make([]*Job, 0, maxB)
	items := make([]*cs.BatchItem, 0, maxB)
	var timer *time.Timer
	for {
		j, ok := <-e.jobs
		if !ok {
			return
		}
		batch = append(batch[:0], j)
		drained := false
		if maxB > 1 {
			drained = e.formBatch(&batch, &timer)
		}
		e.runBatch(dec, batch, items[:0])
		if drained {
			return
		}
	}
}

// formBatch tops the worker's batch (already holding one job) up to the
// configured capacity: first a non-blocking greedy drain of the queue,
// then — when BatchWait is set and slots remain — a deadline-bounded
// wait for late arrivals. Reports whether the job queue was closed, in
// which case the caller runs what it holds and exits.
func (e *Engine) formBatch(batch *[]*Job, timer **time.Timer) bool {
	maxB := e.ecfg.Batch
greedy:
	for len(*batch) < maxB {
		select {
		case j, ok := <-e.jobs:
			if !ok {
				return true
			}
			*batch = append(*batch, j)
		default:
			break greedy
		}
	}
	if e.ecfg.BatchWait <= 0 || len(*batch) >= maxB {
		return false
	}
	if *timer == nil {
		*timer = time.NewTimer(e.ecfg.BatchWait)
	} else {
		(*timer).Reset(e.ecfg.BatchWait)
	}
	for len(*batch) < maxB {
		select {
		case j, ok := <-e.jobs:
			if !ok {
				return true
			}
			*batch = append(*batch, j)
		case <-(*timer).C:
			return false
		}
	}
	if !(*timer).Stop() {
		<-(*timer).C
	}
	return false
}

// runBatch reconstructs one formed batch — one window through the
// sequential solver, several through one structure-of-arrays pass — and
// fans results, stats and telemetry back to the individual jobs.
func (e *Engine) runBatch(dec *cs.Decoder, batch []*Job, items []*cs.BatchItem) {
	tm := e.tel
	anyTraced := false
	for _, j := range batch {
		if j.tring != nil && j.tid != 0 {
			anyTraced = true
			break
		}
	}
	var t0 time.Time
	if tm != nil {
		tm.QueueDepth.Add(int64(-len(batch)))
		tm.BusyWorkers.Add(1)
		if e.ecfg.Batch > 1 {
			tm.BatchWindows.Observe(uint64(len(batch)))
			tm.BatchFillPct.Observe(uint64(100 * len(batch) / e.ecfg.Batch))
		}
	}
	if tm != nil || anyTraced {
		t0 = time.Now()
	}
	if anyTraced {
		// Queue wait ends at worker pickup; record it before the solve so
		// an early tree reader sees the window parked, not missing.
		for _, j := range batch {
			if j.tring != nil && j.tid != 0 {
				j.tring.Record(j.tid, trace.KindQueueWait, j.submitNs, t0.UnixNano()-j.submitNs)
			}
		}
	}
	if len(batch) == 1 {
		j := batch[0]
		// The warm variants with a nil WarmState run the identical cold
		// compute, so routing every job through them changes nothing for
		// plain submissions while giving warm jobs and telemetry one path.
		if e.cfg.DisableJoint {
			j.leads, j.stats, j.err = dec.ReconstructLeadsWarm(j.measurements, j.ws)
		} else {
			j.leads, j.stats, j.err = dec.ReconstructJointWarm(j.measurements, j.ws)
		}
	} else {
		// Distinct streams never share a WarmState and each stream has at
		// most one job in flight (the SubmitWarm contract), so the batch
		// holds at most one window per warm state — exactly the
		// cs.BatchItem sequencing contract.
		for _, j := range batch {
			items = append(items, &cs.BatchItem{Y: j.measurements, Warm: j.ws})
		}
		if e.cfg.DisableJoint {
			dec.ReconstructLeadsBatch(items)
		} else {
			dec.ReconstructJointBatch(items)
		}
		for i, j := range batch {
			j.leads, j.stats, j.err = items[i].X, items[i].Stats, items[i].Err
		}
	}
	var dur time.Duration
	if tm != nil || anyTraced {
		dur = time.Since(t0)
	}
	if tm != nil {
		tm.BusyWorkers.Add(-1)
		tm.DecodeNs.ObserveDuration(dur)
	}
	for _, j := range batch {
		if tm != nil {
			tm.Stages.Record(telemetry.StageGatewayDecode, int64(j.seq), t0.UnixNano(), int64(dur))
			if j.err != nil {
				tm.DecodeErrors.Inc()
			} else {
				tm.Decoded.Inc()
				st := j.stats
				tm.Solver.Record(st.Iters, st.Restarts, st.EarlyExit, st.Warm, st.ColdFallback)
			}
		}
		if j.tring != nil && j.tid != 0 {
			j.tring.RecordDecode(j.tid, t0.UnixNano(), int64(dur), j.stats.Iters, len(batch))
		}
		close(j.done)
	}
}

// Submit enqueues one window for reconstruction and returns its Job.
// It validates the packet shape first, blocks while the queue is full,
// and returns ErrEngineClosed after Close.
func (e *Engine) Submit(measurements [][]float64) (*Job, error) {
	return e.SubmitWarm(measurements, nil)
}

// SubmitWarm is Submit with a stream's warm state attached to the job.
// The caller owns the sequencing contract: at most one in-flight job
// per WarmState, and windows of that stream submitted in order (decode
// each window before submitting the next — DecodeWarm does exactly
// that).
func (e *Engine) SubmitWarm(measurements [][]float64, ws *cs.WarmState) (*Job, error) {
	return e.SubmitCtx(measurements, ws, 0, nil)
}

// SubmitCtx is SubmitWarm carrying a window's trace context: the
// worker records the job's queue-wait and decode spans under tid into
// ring. A zero tid or nil ring submits untraced (identical compute).
func (e *Engine) SubmitCtx(measurements [][]float64, ws *cs.WarmState, tid trace.ID, ring *trace.Ring) (*Job, error) {
	if len(measurements) != e.cfg.Leads {
		return nil, ErrGateway
	}
	for _, lead := range measurements {
		if len(lead) != e.m {
			return nil, ErrGateway
		}
	}
	j := &Job{measurements: measurements, seq: e.seq.Add(1) - 1, done: make(chan struct{}), ws: ws}
	if ring != nil && tid != 0 {
		j.tid, j.tring = tid, ring
		j.submitNs = time.Now().UnixNano()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	// The depth gauge counts jobs committed to the queue but not yet
	// picked up; raising it before the (possibly blocking) send makes a
	// full queue visible as depth > capacity rather than hiding the
	// backpressure.
	if tm := e.tel; tm != nil {
		tm.Submitted.Inc()
		tm.QueueDepth.Add(1)
	}
	e.jobs <- j
	return j, nil
}

// Decode reconstructs one window synchronously (Submit + Wait).
func (e *Engine) Decode(measurements [][]float64) ([][]float64, error) {
	j, err := e.Submit(measurements)
	if err != nil {
		return nil, err
	}
	return j.Wait()
}

// DecodeWarm reconstructs one window synchronously with the stream's
// warm state, returning the convergence stats alongside the leads.
func (e *Engine) DecodeWarm(measurements [][]float64, ws *cs.WarmState) ([][]float64, cs.SolveStats, error) {
	j, err := e.SubmitWarm(measurements, ws)
	if err != nil {
		return nil, cs.SolveStats{}, err
	}
	leads, err := j.Wait()
	return leads, j.stats, err
}

// DecodeWindows reconstructs a batch of windows and returns the results
// in submission order. Submission and collection are pipelined from a
// second goroutine so the batch may exceed the queue depth; the first
// decode error aborts the batch (remaining jobs still drain).
func (e *Engine) DecodeWindows(windows [][][]float64) ([][][]float64, error) {
	ch := make(chan *Job, len(windows))
	var submitErr error
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		defer close(ch)
		for _, w := range windows {
			j, err := e.Submit(w)
			if err != nil {
				submitErr = err
				return
			}
			ch <- j
		}
	}()
	out := make([][][]float64, 0, len(windows))
	var firstErr error
	for j := range ch {
		leads, err := j.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out = append(out, leads)
	}
	swg.Wait()
	if firstErr == nil {
		firstErr = submitErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Close shuts the pool down after in-flight jobs finish. Further
// Submits fail with ErrGateway. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

package gateway

import (
	"errors"
	"math/rand"
	"testing"

	"wbsn/internal/core"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/link"
)

func TestConsumePacketValidatesMeasurementLength(t *testing.T) {
	r, err := NewReceiver(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := r.MeasurementLen()
	if m <= 0 {
		t.Fatalf("measurement length %d", m)
	}
	// One lead short, one lead long, one lead nil: all rejected.
	bad := [][][]float64{
		{make([]float64, m-1), make([]float64, m), make([]float64, m)},
		{make([]float64, m), make([]float64, m+1), make([]float64, m)},
		{make([]float64, m), nil, make([]float64, m)},
	}
	for i, ms := range bad {
		if err := r.ConsumePacket(ms); !errors.Is(err, ErrGateway) {
			t.Errorf("case %d: got %v, want ErrGateway", i, err)
		}
	}
	if r.SamplesReceived() != 0 {
		t.Error("rejected packets must not extend the signal")
	}
	// The well-formed packet passes.
	ok := [][]float64{make([]float64, m), make([]float64, m), make([]float64, m)}
	if err := r.ConsumePacket(ok); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	if r.SamplesReceived() != r.cfg.CSWindow {
		t.Errorf("received %d samples, want %d", r.SamplesReceived(), r.cfg.CSWindow)
	}
}

func TestConsumeLostPacketKeepsAlignment(t *testing.T) {
	r, err := NewReceiver(Config{})
	if err != nil {
		t.Fatal(err)
	}
	r.ConsumeLostPacket()
	r.ConsumeLostPacket()
	if got, want := r.SamplesReceived(), 2*r.cfg.CSWindow; got != want {
		t.Fatalf("lost packets padded %d samples, want %d", got, want)
	}
	for li, lead := range r.Signal() {
		for i, v := range lead {
			if v != 0 {
				t.Fatalf("lead %d sample %d not zero-filled: %v", li, i, v)
			}
		}
	}
	// A lost-window-only receiver delineates to nothing, without error.
	beats, err := r.Delineate()
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) != 0 {
		t.Errorf("zero-filled signal produced %d beats", len(beats))
	}
}

// csPackets runs a record through a CS node and returns the receiver
// plus the emitted packet events.
func csPackets(t *testing.T, rec *ecg.Record, seed int64) (*Receiver, []core.Event) {
	t.Helper()
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(MatchNode(node.Config()))
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		t.Fatal(err)
	}
	var packets []core.Event
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			packets = append(packets, e)
		}
	}
	if len(packets) < 6 {
		t.Fatalf("only %d packets", len(packets))
	}
	return rx, packets
}

// TestOutOfOrderAndDuplicateDelivery shuffles and duplicates the packet
// stream through a link.Reassembler in front of the receiver: the
// reconstruction must be identical to in-order delivery.
func TestOutOfOrderAndDuplicateDelivery(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 47, Duration: 20})
	rxOrdered, packets := csPackets(t, rec, 13)
	for _, e := range packets {
		if err := rxOrdered.ConsumePacket(e.Measurements); err != nil {
			t.Fatal(err)
		}
	}
	rxShuffled, packets2 := csPackets(t, rec, 13)
	ra := link.NewReassembler(rxShuffled)
	// Shuffle within a bounded horizon and duplicate every third packet,
	// mimicking MAC-level reordering plus lost acks.
	arrivals := make([]link.Packet, 0, len(packets2)*2)
	for i, e := range packets2 {
		arrivals = append(arrivals, link.Packet{Seq: uint32(i), WindowStart: uint32(e.At), Measurements: e.Measurements})
		if i%3 == 0 {
			arrivals = append(arrivals, link.Packet{Seq: uint32(i), WindowStart: uint32(e.At), Measurements: e.Measurements})
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := range arrivals {
		j := i + rng.Intn(4)
		if j < len(arrivals) {
			arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
		}
	}
	for _, p := range arrivals {
		if err := ra.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}
	if ra.Stats().Filled != 0 {
		t.Errorf("bounded shuffle should lose nothing, filled %d", ra.Stats().Filled)
	}
	if rxShuffled.SamplesReceived() != rxOrdered.SamplesReceived() {
		t.Fatalf("length mismatch: %d vs %d", rxShuffled.SamplesReceived(), rxOrdered.SamplesReceived())
	}
	for li := range rxOrdered.Signal() {
		a, b := rxOrdered.Signal()[li], rxShuffled.Signal()[li]
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("lead %d diverges at sample %d after reordered delivery", li, i)
			}
		}
	}
}

// TestLossDegradesSNRSmoothly drops a growing fraction of packets and
// checks the reconstruction degrades monotonically — fewer delivered
// windows, lower SNR, never a panic or error — while the signal length
// stays pinned to the transmitted span.
func TestLossDegradesSNRSmoothly(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 48, Duration: 20})
	snrAt := func(dropEvery int) float64 {
		rx, packets := csPackets(t, rec, 17)
		for i, e := range packets {
			if dropEvery > 0 && i%dropEvery == dropEvery-1 {
				rx.ConsumeLostPacket()
				continue
			}
			if err := rx.ConsumePacket(e.Measurements); err != nil {
				t.Fatal(err)
			}
		}
		want := len(packets) * rx.cfg.CSWindow
		if rx.SamplesReceived() != want {
			t.Fatalf("drop-every-%d: %d samples, want %d", dropEvery, rx.SamplesReceived(), want)
		}
		total := 0.0
		for li := range rec.Clean {
			total += dsp.SNRdB(rec.Clean[li][:want], rx.Signal()[li])
		}
		return total / float64(len(rec.Clean))
	}
	lossless := snrAt(0)
	light := snrAt(6) // ~17% loss
	heavy := snrAt(3) // ~33% loss
	if !(lossless > light && light > heavy) {
		t.Errorf("SNR not monotone in loss: lossless %.1f, light %.1f, heavy %.1f", lossless, light, heavy)
	}
	if heavy < 0 {
		t.Errorf("heavy-loss SNR %.1f dB — delivered windows should still carry signal", heavy)
	}
}

package gateway

import (
	"sync"
	"testing"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
	"wbsn/internal/telemetry"
)

// encodeRecord runs a record through a ModeCS node stream and returns
// the packet events plus the node config used.
func encodeRecord(t testing.TB, seed int64, duration float64) ([]core.Event, core.Config) {
	t.Helper()
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: duration})
	ncfg := core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 9}
	node, err := core.NewNode(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		t.Fatal(err)
	}
	return events, node.Config()
}

func fastConfig(ncfg core.Config) Config {
	cfg := MatchNode(ncfg)
	cfg.Solver.Iters = 40
	return cfg
}

func equalSignals(t *testing.T, want, got [][]float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d leads, want %d", label, len(got), len(want))
	}
	for li := range want {
		if len(want[li]) != len(got[li]) {
			t.Fatalf("%s: lead %d has %d samples, want %d", label, li, len(got[li]), len(want[li]))
		}
		for i := range want[li] {
			if got[li][i] != want[li][i] {
				t.Fatalf("%s: lead %d sample %d = %g, want %g (not bit-identical)", label, li, i, got[li][i], want[li][i])
			}
		}
	}
}

// The engine must produce exactly the serial receiver's output — same
// windows, same order, bit for bit — at any worker count.
func TestEngineMatchesSerial(t *testing.T) {
	events, ncfg := encodeRecord(t, 52, 10)
	cfg := fastConfig(ncfg)
	serial, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}
	if serial.SamplesReceived() == 0 {
		t.Fatal("no windows decoded")
	}
	for _, workers := range []int{1, 2, 4} {
		eng, err := NewEngine(cfg, EngineConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rx.AttachEngine(eng); err != nil {
			t.Fatal(err)
		}
		if err := rx.ConsumeEvents(events); err != nil {
			t.Fatal(err)
		}
		equalSignals(t, serial.Signal(), rx.Signal(), "engine ConsumeEvents")
		// The single-packet path must route through the engine too.
		rx.Reset()
		for _, e := range events {
			if e.Kind != core.EventPacket || e.Measurements == nil {
				continue
			}
			if err := rx.ConsumePacket(e.Measurements); err != nil {
				t.Fatal(err)
			}
		}
		equalSignals(t, serial.Signal(), rx.Signal(), "engine ConsumePacket")
		eng.Close()
	}
}

// DecodeWindows must return results in submission order even when
// later windows finish first.
func TestEngineOrderedDelivery(t *testing.T) {
	events, ncfg := encodeRecord(t, 53, 12)
	cfg := fastConfig(ncfg)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var windows [][][]float64
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows = append(windows, e.Measurements)
		}
	}
	if len(windows) < 3 {
		t.Fatalf("need >= 3 windows, got %d", len(windows))
	}
	// Serial per-window references.
	refs := make([][][]float64, len(windows))
	for i, w := range windows {
		rx.Reset()
		if err := rx.ConsumePacket(w); err != nil {
			t.Fatal(err)
		}
		refs[i] = make([][]float64, len(rx.Signal()))
		for li, l := range rx.Signal() {
			refs[i][li] = append([]float64(nil), l...)
		}
	}
	eng, err := NewEngine(cfg, EngineConfig{Workers: 4, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	decoded, err := eng.DecodeWindows(windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(windows) {
		t.Fatalf("decoded %d windows, want %d", len(decoded), len(windows))
	}
	for i := range decoded {
		equalSignals(t, refs[i], decoded[i], "DecodeWindows order")
	}
}

// Many producers hammering one engine concurrently must each observe
// bit-identical output. Run under -race this is the engine's data-race
// certificate.
func TestEngineRaceHammer(t *testing.T) {
	events, ncfg := encodeRecord(t, 54, 8)
	cfg := fastConfig(ncfg)
	var windows [][][]float64
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows = append(windows, e.Measurements)
		}
	}
	serial, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([][][]float64, len(windows))
	for i, w := range windows {
		serial.Reset()
		if err := serial.ConsumePacket(w); err != nil {
			t.Fatal(err)
		}
		refs[i] = make([][]float64, len(serial.Signal()))
		for li, l := range serial.Signal() {
			refs[i][li] = append([]float64(nil), l...)
		}
	}
	eng, err := NewEngine(cfg, EngineConfig{Workers: 4, Queue: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const producers = 6
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for rep := 0; rep < 2; rep++ {
				i := (p + rep) % len(windows)
				got, err := eng.Decode(windows[i])
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				for li := range refs[i] {
					for s := range refs[i][li] {
						if got[li][s] != refs[i][li][s] {
							t.Errorf("producer %d window %d lead %d sample %d differs", p, i, li, s)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestEngineCloseAndValidation(t *testing.T) {
	_, ncfg := encodeRecord(t, 55, 4)
	cfg := fastConfig(ncfg)
	eng, err := NewEngine(cfg, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 2 {
		t.Errorf("Workers() = %d, want 2", eng.Workers())
	}
	// Shape validation happens before queueing.
	if _, err := eng.Submit(make([][]float64, 1)); err != ErrGateway {
		t.Errorf("bad lead count: got %v, want ErrGateway", err)
	}
	bad := make([][]float64, cfg.Leads)
	for i := range bad {
		bad[i] = make([]float64, 3)
	}
	if _, err := eng.Submit(bad); err != ErrGateway {
		t.Errorf("bad measurement length: got %v, want ErrGateway", err)
	}
	eng.Close()
	eng.Close() // idempotent
	good := make([][]float64, cfg.Leads)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		good[i] = make([]float64, rx.MeasurementLen())
	}
	if _, err := eng.Submit(good); err != ErrEngineClosed {
		t.Errorf("submit after close: got %v, want ErrEngineClosed", err)
	}
	// AttachEngine must reject configuration mismatches.
	mismatch := cfg
	mismatch.DisableJoint = !cfg.DisableJoint
	eng2, err := NewEngine(mismatch, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if err := rx.AttachEngine(eng2); err != ErrGateway {
		t.Errorf("mismatched engine attach: got %v, want ErrGateway", err)
	}
	if err := rx.AttachEngine(nil); err != nil {
		t.Errorf("detach: %v", err)
	}
}

func TestReceiverReset(t *testing.T) {
	events, ncfg := encodeRecord(t, 56, 6)
	cfg := fastConfig(ncfg)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}
	first := make([][]float64, len(rx.Signal()))
	for li, l := range rx.Signal() {
		first[li] = append([]float64(nil), l...)
	}
	rx.Reset()
	if rx.SamplesReceived() != 0 {
		t.Fatalf("after Reset: %d samples", rx.SamplesReceived())
	}
	if err := rx.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}
	equalSignals(t, first, rx.Signal(), "replay after Reset")
}

// TestEngineTelemetry decodes a batch with the gateway metric family
// attached and checks the live gauges settle back to idle, every
// submitted window is accounted for, and — the invariant everything
// else rests on — the reconstructed signal is bit-identical to an
// uninstrumented engine's.
func TestEngineTelemetry(t *testing.T) {
	events, ncfg := encodeRecord(t, 57, 10)
	cfg := fastConfig(ncfg)

	decode := func(ecfg EngineConfig) [][]float64 {
		eng, err := NewEngine(cfg, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		rx, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rx.AttachEngine(eng); err != nil {
			t.Fatal(err)
		}
		if err := rx.ConsumeEvents(events); err != nil {
			t.Fatal(err)
		}
		return rx.Signal()
	}

	reg := telemetry.NewRegistry()
	tm := telemetry.NewGatewayMetrics(reg, telemetry.NewStageSet(reg, telemetry.NewTracer(256)))
	instrumented := decode(EngineConfig{Workers: 3, Metrics: tm})
	bare := decode(EngineConfig{Workers: 3})
	equalSignals(t, bare, instrumented, "telemetry-attached engine")

	windows := 0
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows++
		}
	}
	if got := tm.Submitted.Value(); got != uint64(windows) {
		t.Errorf("submitted %d, want %d", got, windows)
	}
	if got := tm.Decoded.Value(); got != uint64(windows) {
		t.Errorf("decoded %d, want %d", got, windows)
	}
	if tm.DecodeErrors.Value() != 0 {
		t.Errorf("decode errors %d", tm.DecodeErrors.Value())
	}
	if tm.QueueDepth.Value() != 0 {
		t.Errorf("queue depth %d after drain, want 0", tm.QueueDepth.Value())
	}
	if tm.BusyWorkers.Value() != 0 {
		t.Errorf("busy workers %d after drain, want 0", tm.BusyWorkers.Value())
	}
	if tm.Workers.Value() != 3 {
		t.Errorf("workers gauge %d, want 3", tm.Workers.Value())
	}
	if tm.DecodeNs.Count() != uint64(windows) {
		t.Errorf("decode latency observations %d, want %d", tm.DecodeNs.Count(), windows)
	}
	if got := tm.Stages.Stage(telemetry.StageGatewayDecode).Count(); got != uint64(windows) {
		t.Errorf("gateway_decode spans %d, want %d", got, windows)
	}
	if tm.QueueDepth.High() < 1 {
		t.Errorf("queue depth watermark %d, want >= 1", tm.QueueDepth.High())
	}
}

package gateway

import (
	"testing"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
)

func TestReceiverValidation(t *testing.T) {
	r, err := NewReceiver(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ConsumePacket(make([][]float64, 2)); err != ErrGateway {
		t.Error("wrong lead count should fail")
	}
	if got, err := r.Delineate(); err != nil || got != nil {
		t.Error("empty receiver should delineate to nothing")
	}
}

func TestMatchNodeMirrorsConfig(t *testing.T) {
	ncfg := core.Config{Mode: core.ModeCS, Fs: 256, Leads: 3, CSWindow: 512, CSRatio: 60, CSDensity: 4, Seed: 5}
	g := MatchNode(ncfg)
	if g.CSWindow != 512 || g.CSRatio != 60 || g.Seed != 5 || g.Leads != 3 {
		t.Errorf("MatchNode mismatch: %+v", g)
	}
}

// TestEndToEndCompressTransmitDiagnose is the full loop of the paper's
// architecture: the node compresses a record with CS, the packets cross
// the "radio", the gateway reconstructs and delineates — and the remote
// diagnosis must match the ground truth nearly as well as direct
// delineation would.
func TestEndToEndCompressTransmitDiagnose(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 44, Duration: 30})
	ncfg := core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 9}
	node, err := core.NewNode(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(MatchNode(node.Config()))
	if err != nil {
		t.Fatal(err)
	}
	// Node side: stream the record through the CS encoder. Use the clean
	// leads so reconstruction error is the only distortion under test.
	block := 256
	for start := 0; start < rec.Len(); start += block {
		end := start + block
		if end > rec.Len() {
			end = rec.Len()
		}
		chunk := make([][]float64, len(rec.Leads))
		for li := range chunk {
			chunk[li] = rec.Clean[li][start:end]
		}
		events, err := stream.PushBlock(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if err := rx.ConsumeEvents(events); err != nil {
			t.Fatal(err)
		}
	}
	events, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if err := rx.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}
	wantSamples := (rec.Len() / node.Config().CSWindow) * node.Config().CSWindow
	if rx.SamplesReceived() != wantSamples {
		t.Fatalf("received %d samples, want %d", rx.SamplesReceived(), wantSamples)
	}
	// Reconstruction quality at CR 60 must be diagnostic-grade.
	recon := rx.Signal()
	for li := range recon {
		snr := dsp.SNRdB(rec.Clean[li][:wantSamples], recon[li])
		if snr < 15 {
			t.Errorf("lead %d reconstruction %.1f dB", li, snr)
		}
	}
	// Remote delineation on the reconstruction vs ground truth.
	beats, err := rx.Delineate()
	if err != nil {
		t.Fatal(err)
	}
	// Trim the truth to the received span.
	trimmed := *rec
	trimmed.Beats = nil
	for _, b := range rec.Beats {
		if b.Fid.TOff < wantSamples {
			trimmed.Beats = append(trimmed.Beats, b)
		}
	}
	rep := delineation.Evaluate(&trimmed, beats, delineation.DefaultTolerances())
	if rep.R.Se() < 0.95 || rep.R.PPV() < 0.95 {
		t.Errorf("remote QRS detection Se=%.3f PPV=%.3f on reconstructed signal", rep.R.Se(), rep.R.PPV())
	}
	if rep.TPeak.Se() < 0.85 {
		t.Errorf("remote T-peak Se=%.3f on reconstructed signal", rep.TPeak.Se())
	}
}

func TestJointVsIndependentGateway(t *testing.T) {
	// The gateway's joint reconstruction must beat per-lead independent
	// decoding at an aggressive CR, measured on the reconstructed SNR.
	rec := ecg.Generate(ecg.Config{Seed: 45, Duration: 12})
	run := func(disableJoint bool) float64 {
		node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 72, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		stream, _ := node.NewStream()
		rx, err := NewReceiver(Config{
			CSRatio: 72, Seed: 11, DisableJoint: disableJoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		chunk := make([][]float64, len(rec.Leads))
		for li := range chunk {
			chunk[li] = rec.Clean[li]
		}
		events, err := stream.PushBlock(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if err := rx.ConsumeEvents(events); err != nil {
			t.Fatal(err)
		}
		n := rx.SamplesReceived()
		total := 0.0
		for li := range rec.Clean {
			total += dsp.SNRdB(rec.Clean[li][:n], rx.Signal()[li])
		}
		return total / float64(len(rec.Clean))
	}
	joint := run(false)
	indep := run(true)
	if joint <= indep {
		t.Errorf("joint gateway decoding (%.2f dB) should beat independent (%.2f dB)", joint, indep)
	}
}

func TestLostPacketDegradesGracefully(t *testing.T) {
	rec := ecg.Generate(ecg.Config{Seed: 46, Duration: 20})
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := node.NewStream()
	rx, err := NewReceiver(MatchNode(node.Config()))
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		t.Fatal(err)
	}
	// Drop every third packet.
	dropped := 0
	for i, e := range events {
		if e.Kind != core.EventPacket {
			continue
		}
		if i%3 == 2 {
			rx.ConsumeLostPacket()
			dropped++
			continue
		}
		if err := rx.ConsumePacket(e.Measurements); err != nil {
			t.Fatal(err)
		}
	}
	if dropped == 0 {
		t.Fatal("test did not drop any packet")
	}
	// Alignment preserved: received sample count matches the full span.
	want := (rec.Len() / node.Config().CSWindow) * node.Config().CSWindow
	if rx.SamplesReceived() != want {
		t.Fatalf("alignment broken: %d vs %d", rx.SamplesReceived(), want)
	}
	// Delivered windows still reconstruct: QRS detection inside them works.
	beats, err := rx.Delineate()
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) < len(rec.Beats)/2 {
		t.Errorf("only %d beats recovered of %d truth beats with 1/3 loss",
			len(beats), len(rec.Beats))
	}
}

package gateway

import (
	"testing"
)

// TestReceiverResetAcrossRecords replays two different records through
// one pooled receiver with a Reset in between: the second record's
// reconstruction must be bit-identical to a fresh receiver's, both on
// the inline decode path and with a worker-pool engine attached — no
// signal state bleeds between patients.
func TestReceiverResetAcrossRecords(t *testing.T) {
	eventsA, ncfg := encodeRecord(t, 41, 8)
	eventsB, _ := encodeRecord(t, 42, 8)
	cfg := fastConfig(ncfg)

	for _, withEngine := range []bool{false, true} {
		name := "inline"
		if withEngine {
			name = "engine"
		}
		t.Run(name, func(t *testing.T) {
			var eng *Engine
			if withEngine {
				var err error
				eng, err = NewEngine(cfg, EngineConfig{Workers: 3})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
			}
			newRx := func() *Receiver {
				rx, err := NewReceiver(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if eng != nil {
					if err := rx.AttachEngine(eng); err != nil {
						t.Fatal(err)
					}
				}
				return rx
			}
			pooled := newRx()
			if err := pooled.ConsumeEvents(eventsA); err != nil {
				t.Fatal(err)
			}
			if pooled.SamplesReceived() == 0 {
				t.Fatal("record A produced no reconstructed samples")
			}
			pooled.Reset()
			if pooled.SamplesReceived() != 0 {
				t.Fatal("Reset left reconstructed samples behind")
			}
			if err := pooled.ConsumeEvents(eventsB); err != nil {
				t.Fatal(err)
			}

			fresh := newRx()
			if err := fresh.ConsumeEvents(eventsB); err != nil {
				t.Fatal(err)
			}
			got, want := pooled.Signal(), fresh.Signal()
			if len(got) != len(want) {
				t.Fatalf("lead count %d != %d", len(got), len(want))
			}
			for li := range want {
				if len(got[li]) != len(want[li]) {
					t.Fatalf("lead %d length %d != %d", li, len(got[li]), len(want[li]))
				}
				for i := range want[li] {
					if got[li][i] != want[li][i] {
						t.Fatalf("lead %d sample %d: pooled receiver not bit-identical after Reset", li, i)
					}
				}
			}
			// The remote analysis must agree too.
			gb, err := pooled.Delineate()
			if err != nil {
				t.Fatal(err)
			}
			wb, err := fresh.Delineate()
			if err != nil {
				t.Fatal(err)
			}
			if len(gb) != len(wb) {
				t.Fatalf("beat count %d != %d", len(gb), len(wb))
			}
			for i := range wb {
				if gb[i] != wb[i] {
					t.Fatalf("beat %d fiducials diverged", i)
				}
			}
		})
	}
}

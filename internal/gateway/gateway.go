// Package gateway implements the receiver side of the paper's
// architecture: the WBSN coordinator (a smartphone or base station,
// ref [5] demonstrates "a real-time CS decoder running on an iPhone")
// that collects the node's compressed packets, reconstructs the signal
// and performs the heavyweight analysis the node offloaded — closing the
// compress → transmit → reconstruct → diagnose loop end to end.
//
// The gateway shares the sensing-matrix seed with the node (matrices are
// pseudo-random, so only the seed travels); measurements arrive through
// core.Stream packet events or any transport that preserves the window
// order.
package gateway

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

// ErrGateway is returned for configuration or packet-consistency errors.
var ErrGateway = errors.New("gateway: invalid configuration or packet")

// ErrEngineClosed is returned by Engine.Submit/Decode after Close: the
// worker pool is gone, so the caller must either fail the stream or
// route the decode inline. It is distinct from ErrGateway so lifecycle
// races (submitting to a draining engine) are distinguishable from
// malformed packets.
var ErrEngineClosed = errors.New("gateway: engine closed")

// Config parameterises the receiver. It must mirror the node's CS
// configuration (window, ratio, density, seed, lead count).
type Config struct {
	// Fs is the sampling rate in Hz.
	Fs float64
	// Leads is the lead count.
	Leads int
	// CSWindow, CSRatio, CSDensity, Seed mirror the node's encoder.
	CSWindow  int
	CSRatio   float64
	CSDensity int
	Seed      int64
	// Joint selects multi-lead joint reconstruction (default true).
	DisableJoint bool
	// WarmStart carries each window's wavelet coefficients into the next
	// window's solve (per-lead, per-receiver). Combined with Solver.Tol
	// it converts inter-window correlation into skipped iterations; the
	// warm state is dropped on Reset and on lost windows so a stale seed
	// never crosses a stream boundary or an ARQ gap. Off by default —
	// the cold fixed-budget path stays bit-identical to earlier
	// revisions.
	WarmStart bool
	// Solver tunes the reconstruction (defaults: 150 iterations, 1
	// reweighting pass — the real-time receiver budget of ref [5]).
	// Setting Solver.Tol > 0 additionally enables the convergence-aware
	// early exit and adaptive restart inside the solver.
	Solver cs.SolverConfig
}

func (c Config) withDefaults() Config {
	out := c
	if out.Fs <= 0 {
		out.Fs = 256
	}
	if out.Leads <= 0 {
		out.Leads = 3
	}
	if out.CSWindow <= 0 {
		out.CSWindow = 512
	}
	if out.CSRatio <= 0 {
		out.CSRatio = 65.9
	}
	if out.CSDensity <= 0 {
		out.CSDensity = 4
	}
	if out.Solver.Iters <= 0 {
		out.Solver.Iters = 150
	}
	if out.Solver.Reweights == 0 {
		out.Solver.Reweights = 1
	}
	return out
}

// decoderKey identifies one immutable decoder build: the sensing-matrix
// geometry and seed plus the full solver configuration. SolverConfig is
// comparable (scalars and one basis pointer), so the key is usable as a
// map key directly.
type decoderKey struct {
	window, density int
	ratio           float64
	seed            int64
	solver          cs.SolverConfig
}

// decoderCache shares the expensive immutable decoder state — flat CSR
// index walk, Lipschitz step, penalty weights, synthesis tables —
// between every receiver/engine built from an identical configuration.
// Matrix regeneration and solver derivation dominate rig construction
// (fleet shards and engine workers rebuild the same decoder dozens of
// times), while Clone only allocates fresh scratch pools. Decoders are
// immutable after construction, so sharing one base across goroutines
// is safe.
var decoderCache struct {
	sync.Mutex
	m map[decoderKey]*cs.Decoder
}

// decoderCacheCap bounds the cache; distinct configurations beyond the
// cap (test suites sweep seeds and solver settings) reset it rather
// than grow it without bound.
const decoderCacheCap = 32

// buildDecoder regenerates the sensing matrix from the shared seed
// exactly as the node's encoder drew it and derives the solver, reusing
// the cached derived state when an identical configuration was built
// before. It returns a private clone plus the per-lead measurement
// count. c must already have defaults applied.
func (c Config) buildDecoder() (*cs.Decoder, int, error) {
	m := cs.MeasurementsForCR(c.CSWindow, c.CSRatio)
	d := c.CSDensity
	if d > m {
		d = m
	}
	key := decoderKey{window: c.CSWindow, density: d, ratio: c.CSRatio, seed: c.Seed, solver: c.Solver}
	decoderCache.Lock()
	base := decoderCache.m[key]
	decoderCache.Unlock()
	if base != nil {
		return base.Clone(), m, nil
	}
	phi, err := cs.NewSparseBinary(m, c.CSWindow, d, rand.New(rand.NewSource(c.Seed)))
	if err != nil {
		return nil, 0, err
	}
	dec, err := cs.NewDecoder(phi, c.Solver)
	if err != nil {
		return nil, 0, err
	}
	decoderCache.Lock()
	if decoderCache.m == nil || len(decoderCache.m) >= decoderCacheCap {
		decoderCache.m = make(map[decoderKey]*cs.Decoder)
	}
	decoderCache.m[key] = dec
	decoderCache.Unlock()
	return dec.Clone(), m, nil
}

// MatchNode builds a gateway Config mirroring a node configuration.
func MatchNode(n core.Config) Config {
	return Config{
		Fs:        n.Fs,
		Leads:     n.Leads,
		CSWindow:  n.CSWindow,
		CSRatio:   n.CSRatio,
		CSDensity: n.CSDensity,
		Seed:      n.Seed,
	}
}

// Receiver reconstructs the node's compressed stream.
type Receiver struct {
	cfg Config
	dec *cs.Decoder
	// m is the per-lead measurement count the configured encoder emits;
	// packets that disagree are rejected rather than decoded into
	// garbage.
	m int
	// signal accumulates the reconstructed leads.
	signal [][]float64
	del    *delineation.WaveletDelineator
	// engine, when attached, decodes windows on a worker pool instead
	// of inline; results are appended in packet order either way.
	engine *Engine
	// ws carries the previous window's coefficients when WarmStart is
	// on; nil otherwise. One receiver = one stream, so the state never
	// mixes patients.
	ws *cs.WarmState
	// tel, when set, receives convergence stats from the inline decode
	// path (the engine path records through the engine's own metrics).
	tel *telemetry.SolverMetrics
	// trRing, when set, receives the gateway-side spans of traced
	// windows; curTID is the trace ID of the packet currently being
	// consumed (zero between packets).
	trRing *trace.Ring
	curTID trace.ID
}

// NewReceiver builds the receiver; the sensing matrix is regenerated
// from the shared seed exactly as the node's encoder drew it.
func NewReceiver(cfg Config) (*Receiver, error) {
	c := cfg.withDefaults()
	dec, m, err := c.buildDecoder()
	if err != nil {
		return nil, err
	}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: c.Fs})
	if err != nil {
		return nil, err
	}
	r := &Receiver{cfg: c, dec: dec, m: m, del: del}
	if c.WarmStart {
		r.ws = cs.NewWarmState()
	}
	r.signal = make([][]float64, c.Leads)
	return r, nil
}

// SetTelemetry routes convergence stats from the inline decode path to
// the given solver metrics (nil detaches). With an engine attached the
// engine's own metrics receive the stats instead.
func (r *Receiver) SetTelemetry(sm *telemetry.SolverMetrics) { r.tel = sm }

// SetTrace attaches (or detaches, with nil) the window-trace ring this
// receiver records its gateway-side spans into. Observation only: the
// reconstructed signal is bit-identical either way.
func (r *Receiver) SetTrace(tr *trace.Ring) {
	r.trRing = tr
	r.curTID = 0
}

// resetWarm invalidates the carried coefficients (stream boundary or
// lost window) and counts the reset in whichever metrics sink is
// active: the engine's when one is attached, else the receiver's.
func (r *Receiver) resetWarm() {
	if r.ws == nil {
		return
	}
	r.ws.Reset()
	if r.engine != nil {
		if tm := r.engine.tel; tm != nil {
			tm.Solver.RecordReset()
			return
		}
	}
	r.tel.RecordReset()
}

// MeasurementLen returns the per-lead measurement count the receiver
// expects in every packet.
func (r *Receiver) MeasurementLen() int { return r.m }

// WarmState exposes the receiver's warm-start state (nil when WarmStart
// is off) so a fleet scheduler can tier it: snapshot the coefficients
// when the patient leaves this rig, rehydrate them when it returns.
// Callers must only touch the state between packets — it is owned by
// the decode path while a window is in flight.
func (r *Receiver) WarmState() *cs.WarmState { return r.ws }

// ConsumePacket reconstructs one window from the node's measurement
// packet and appends it to the receiver-side signal. The packet must
// match the configured encoder exactly — one vector per lead, each of
// the encoder's measurement length — otherwise it returns ErrGateway
// instead of decoding a malformed window into the signal.
func (r *Receiver) ConsumePacket(measurements [][]float64) error {
	r.curTID = 0
	return r.consume(measurements)
}

// ConsumePacketTraced is ConsumePacket for a window carrying a trace
// ID (it satisfies link.TracedSink structurally): the decode and
// ordered-delivery spans are recorded under tid, completing the
// window's span tree. encodeNs > 0 is a wire-reported node-side encode
// duration from a remote clock; it is re-anchored to this side's clock
// (span start = now − duration — the duration is the measurement, the
// start only aligns the tree). Pass 0 when the node records into the
// same ring in-process.
func (r *Receiver) ConsumePacketTraced(measurements [][]float64, tid trace.ID, encodeNs int64) error {
	r.curTID = tid
	if r.trRing != nil && tid != 0 && encodeNs > 0 {
		now := time.Now().UnixNano()
		r.trRing.Record(tid, trace.KindEncode, now-encodeNs, encodeNs)
	}
	err := r.consume(measurements)
	r.curTID = 0
	return err
}

// consume is the shared packet path: shape check, decode, in-order
// append.
func (r *Receiver) consume(measurements [][]float64) error {
	if len(measurements) != r.cfg.Leads {
		return ErrGateway
	}
	for _, lead := range measurements {
		if len(lead) != r.m {
			return ErrGateway
		}
	}
	xs, err := r.decodeOne(measurements)
	if err != nil {
		return err
	}
	r.appendWindow(xs)
	return nil
}

// decodeOne reconstructs a single window through whichever path is
// active, threading the warm state, trace context and convergence
// stats.
func (r *Receiver) decodeOne(measurements [][]float64) ([][]float64, error) {
	if r.engine != nil {
		// A nil WarmState runs the identical cold compute, so one traced
		// submit path covers warm and plain receivers alike.
		j, err := r.engine.SubmitCtx(measurements, r.ws, r.curTID, r.trRing)
		if err != nil {
			return nil, err
		}
		return j.Wait()
	}
	traced := r.trRing != nil && r.curTID != 0
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	var xs [][]float64
	var st cs.SolveStats
	var err error
	if r.cfg.DisableJoint {
		xs, st, err = r.dec.ReconstructLeadsWarm(measurements, r.ws)
	} else {
		xs, st, err = r.dec.ReconstructJointWarm(measurements, r.ws)
	}
	if err != nil {
		return nil, err
	}
	if traced {
		// Inline decode has no queue: the tree holds decode + deliver on
		// the gateway side (batch size 1 by construction).
		r.trRing.RecordDecode(r.curTID, t0.UnixNano(), int64(time.Since(t0)), st.Iters, 1)
	}
	r.tel.Record(st.Iters, st.Restarts, st.EarlyExit, st.Warm, st.ColdFallback)
	return xs, nil
}

func (r *Receiver) appendWindow(xs [][]float64) {
	traced := r.trRing != nil && r.curTID != 0
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	for li := range xs {
		r.signal[li] = append(r.signal[li], xs[li]...)
	}
	if traced {
		// Ordered delivery completes the window: this record publishes
		// the finished tree to the collector's exemplar stores.
		r.trRing.Record(r.curTID, trace.KindDeliver, t0.UnixNano(), int64(time.Since(t0)))
		r.curTID = 0
	}
}

// AttachEngine routes this receiver's reconstructions through a worker
// pool. The engine must mirror the receiver's configuration (lead
// count, measurement length and joint/independent solver choice) so the
// decoded output is bit identical to the inline path.
func (r *Receiver) AttachEngine(e *Engine) error {
	if e == nil {
		r.engine = nil
		return nil
	}
	if e.cfg.Leads != r.cfg.Leads || e.m != r.m || e.cfg.DisableJoint != r.cfg.DisableJoint {
		return ErrGateway
	}
	r.engine = e
	return nil
}

// Reset discards the accumulated signal and any carried warm-start
// coefficients while keeping the decoder (and any attached engine), so
// one receiver can replay many records without one record's solver
// state leaking into the next.
func (r *Receiver) Reset() {
	for li := range r.signal {
		r.signal[li] = r.signal[li][:0]
	}
	r.curTID = 0
	r.resetWarm()
}

// ConsumeEvents feeds every CS packet among the node's stream events to
// the receiver, ignoring other event kinds. With an engine attached the
// packets of the batch are decoded concurrently; the reconstructed
// windows are appended in packet order either way.
func (r *Receiver) ConsumeEvents(events []core.Event) error {
	if r.trRing != nil {
		// Traced consumption goes window by window so each packet's spans
		// land under its own ID (the node records encode into the same
		// collector in-process, so no wire-reported duration is needed).
		// The engine, when attached, still decodes each window — only the
		// cross-window pipelining of the untraced batch path is forgone.
		for _, e := range events {
			if e.Kind != core.EventPacket || e.Measurements == nil {
				continue
			}
			if err := r.ConsumePacketTraced(e.Measurements, e.Trace, 0); err != nil {
				return err
			}
		}
		return nil
	}
	if r.engine != nil {
		var windows [][][]float64
		for _, e := range events {
			if e.Kind != core.EventPacket || e.Measurements == nil {
				continue
			}
			windows = append(windows, e.Measurements)
		}
		if len(windows) == 0 {
			return nil
		}
		// Shape-check before submitting so malformed packets fail with
		// ErrGateway exactly like the inline path.
		for _, w := range windows {
			if len(w) != r.cfg.Leads {
				return ErrGateway
			}
			for _, lead := range w {
				if len(lead) != r.m {
					return ErrGateway
				}
			}
		}
		if r.ws != nil {
			// Warm decoding is inherently sequential within one stream —
			// each window seeds the next — so the batch walks the engine
			// one window at a time. Cross-stream parallelism (other
			// receivers sharing this engine) is unaffected.
			for _, w := range windows {
				xs, _, err := r.engine.DecodeWarm(w, r.ws)
				if err != nil {
					return err
				}
				r.appendWindow(xs)
			}
			return nil
		}
		decoded, err := r.engine.DecodeWindows(windows)
		if err != nil {
			return err
		}
		for _, xs := range decoded {
			r.appendWindow(xs)
		}
		return nil
	}
	for _, e := range events {
		if e.Kind != core.EventPacket || e.Measurements == nil {
			continue
		}
		if err := r.ConsumePacket(e.Measurements); err != nil {
			return err
		}
	}
	return nil
}

// Signal returns the reconstructed leads accumulated so far.
func (r *Receiver) Signal() [][]float64 { return r.signal }

// SamplesReceived returns the per-lead reconstructed length.
func (r *Receiver) SamplesReceived() int {
	if len(r.signal) == 0 {
		return 0
	}
	return len(r.signal[0])
}

// Delineate runs the receiver-side delineator over the reconstructed
// RMS-combined signal — the remote analysis the node's compression must
// preserve.
func (r *Receiver) Delineate() ([]delineation.BeatFiducials, error) {
	if r.SamplesReceived() == 0 {
		return nil, nil
	}
	return r.del.Delineate(dsp.CombineRMS(r.signal))
}

// ConsumeLostPacket records a window the radio failed to deliver: the
// reconstructed signal is padded with zeros so downstream indices stay
// aligned, and any warm-start coefficients are dropped — the carried θ
// described the window before the gap, so seeding the post-gap window
// with it would poison the solve. Remote analysis degrades gracefully —
// beats inside the lost window are missed, neighbours are unaffected.
func (r *Receiver) ConsumeLostPacket() {
	for li := range r.signal {
		r.signal[li] = append(r.signal[li], make([]float64, r.cfg.CSWindow)...)
	}
	r.resetWarm()
}

package gateway

import (
	"sync"
	"testing"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/cs"
	"wbsn/internal/telemetry"
)

func packetWindows(events []core.Event) [][][]float64 {
	var windows [][][]float64
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows = append(windows, e.Measurements)
		}
	}
	return windows
}

func copyLeads(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for li := range xs {
		out[li] = append([]float64(nil), xs[li]...)
	}
	return out
}

// warmReference decodes every window in order through the sequential
// scalar warm path, returning one snapshot per window. Every warm
// stream that replays these windows — batched or not — must reproduce
// it bit for bit.
func warmReference(t *testing.T, cfg Config, windows [][][]float64) [][][]float64 {
	t.Helper()
	seq, err := NewEngine(cfg, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	ws := cs.NewWarmState()
	refs := make([][][]float64, len(windows))
	for wi, win := range windows {
		leads, _, err := seq.DecodeWarm(win, ws)
		if err != nil {
			t.Fatal(err)
		}
		refs[wi] = copyLeads(leads)
	}
	return refs
}

// A batch>1 engine folding warm windows from several streams into one
// structure-of-arrays solver pass must produce exactly the sequential
// scalar output for every stream — the engine-level face of the solver
// bit-identity contract. Covers both the greedy-only and the
// BatchWait deadline-bounded batch-forming policies, and a stream
// count that is not a multiple of the batch so partial batches form.
func TestEngineBatchedMatchesSequential(t *testing.T) {
	events, ncfg := encodeRecord(t, 58, 8)
	cfg := fastConfig(ncfg)
	cfg.Solver.Tol = 1e-3
	windows := packetWindows(events)
	if len(windows) < 2 {
		t.Fatalf("need >= 2 windows, got %d", len(windows))
	}
	refs := warmReference(t, cfg, windows)

	const streams = 5
	for _, ecfg := range []EngineConfig{
		{Workers: 1, Batch: 4},
		{Workers: 2, Batch: 3, BatchWait: 2 * time.Millisecond},
	} {
		eng, err := NewEngine(cfg, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		wss := make([]*cs.WarmState, streams)
		for s := range wss {
			wss[s] = cs.NewWarmState()
		}
		jobs := make([]*Job, streams)
		for wi, win := range windows {
			for s := range wss {
				if jobs[s], err = eng.SubmitWarm(win, wss[s]); err != nil {
					t.Fatal(err)
				}
			}
			for _, j := range jobs {
				got, err := j.Wait()
				if err != nil {
					t.Fatal(err)
				}
				equalSignals(t, refs[wi], got, "batched warm decode")
			}
		}
		eng.Close()
	}
}

// Concurrent warm producers hammering one batch-forming engine: each
// producer owns a warm stream and replays the same record, so every
// producer must observe the sequential reference regardless of how its
// windows were grouped with other streams' windows. Run under -race
// this is the batch path's data-race certificate.
func TestEngineBatchedRaceHammer(t *testing.T) {
	events, ncfg := encodeRecord(t, 59, 8)
	cfg := fastConfig(ncfg)
	cfg.Solver.Tol = 1e-3
	windows := packetWindows(events)
	refs := warmReference(t, cfg, windows)

	eng, err := NewEngine(cfg, EngineConfig{Workers: 3, Batch: 4, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const producers = 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ws := cs.NewWarmState()
			for wi, win := range windows {
				j, err := eng.SubmitWarm(win, ws)
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				got, err := j.Wait()
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				for li := range refs[wi] {
					for i := range refs[wi][li] {
						if got[li][i] != refs[wi][li][i] {
							t.Errorf("producer %d window %d lead %d sample %d differs from sequential", p, wi, li, i)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

// The batch histograms must account for every decoded window, and a
// batch=1 engine must leave them untouched (the sequential path has no
// batch-forming stage to report).
func TestEngineBatchTelemetry(t *testing.T) {
	events, ncfg := encodeRecord(t, 60, 8)
	cfg := fastConfig(ncfg)
	windows := packetWindows(events)

	run := func(batch int) *telemetry.GatewayMetrics {
		reg := telemetry.NewRegistry()
		tm := telemetry.NewGatewayMetrics(reg, telemetry.NewStageSet(reg, telemetry.NewTracer(256)))
		eng, err := NewEngine(cfg, EngineConfig{Workers: 2, Batch: batch, Metrics: tm})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.DecodeWindows(windows); err != nil {
			t.Fatal(err)
		}
		return tm
	}

	tm := run(4)
	if got := tm.Decoded.Value(); got != uint64(len(windows)) {
		t.Errorf("decoded %d, want %d", got, len(windows))
	}
	dispatches := tm.BatchWindows.Count()
	if dispatches == 0 || dispatches > uint64(len(windows)) {
		t.Errorf("batch dispatches %d, want 1..%d", dispatches, len(windows))
	}
	if tm.BatchFillPct.Count() != dispatches {
		t.Errorf("fill observations %d, want %d", tm.BatchFillPct.Count(), dispatches)
	}

	if tm := run(1); tm.BatchWindows.Count() != 0 || tm.BatchFillPct.Count() != 0 {
		t.Errorf("sequential engine reported batch histograms: %d/%d observations",
			tm.BatchWindows.Count(), tm.BatchFillPct.Count())
	}
}

package gateway

import (
	"testing"

	"wbsn/internal/telemetry"
)

// warmConfig enables the convergence-aware warm-started solver on top
// of the fast test config.
func warmConfig(t *testing.T) Config {
	t.Helper()
	_, ncfg := encodeRecord(t, 41, 1)
	cfg := fastConfig(ncfg)
	cfg.WarmStart = true
	cfg.Solver.Tol = 1e-3
	return cfg
}

// TestReceiverWarmResetAcrossRecords is the cross-record isolation
// proof for the warm-started solver: patient A's carried coefficients
// must never seed patient B. A pooled receiver replays record A, Resets
// and replays record B; the B reconstruction must be bit-identical to a
// fresh receiver's — any stale θ surviving the Reset would shift the
// warm solves and break the comparison. Covers both the inline path and
// a shared worker-pool engine.
func TestReceiverWarmResetAcrossRecords(t *testing.T) {
	eventsA, _ := encodeRecord(t, 41, 8)
	eventsB, _ := encodeRecord(t, 42, 8)
	cfg := warmConfig(t)

	for _, withEngine := range []bool{false, true} {
		name := "inline"
		if withEngine {
			name = "engine"
		}
		t.Run(name, func(t *testing.T) {
			var eng *Engine
			if withEngine {
				var err error
				eng, err = NewEngine(cfg, EngineConfig{Workers: 3})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
			}
			newRx := func() *Receiver {
				rx, err := NewReceiver(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if eng != nil {
					if err := rx.AttachEngine(eng); err != nil {
						t.Fatal(err)
					}
				}
				return rx
			}
			pooled := newRx()
			if err := pooled.ConsumeEvents(eventsA); err != nil {
				t.Fatal(err)
			}
			pooled.Reset()
			if err := pooled.ConsumeEvents(eventsB); err != nil {
				t.Fatal(err)
			}
			fresh := newRx()
			if err := fresh.ConsumeEvents(eventsB); err != nil {
				t.Fatal(err)
			}
			equalSignals(t, fresh.Signal(), pooled.Signal(), "warm receiver after Reset")
		})
	}
}

// TestReceiverWarmGapReset pins the ARQ-gap semantics: a lost window
// drops the carried coefficients, so the post-gap reconstruction is
// bit-identical to a cold decode of the same window — the stale θ from
// before the gap cannot poison it.
func TestReceiverWarmGapReset(t *testing.T) {
	events, _ := encodeRecord(t, 43, 8)
	cfg := warmConfig(t)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sm := telemetry.NewSolverMetrics(reg)
	rx.SetTelemetry(sm)

	var packets [][][]float64
	for _, e := range events {
		if e.Measurements != nil {
			packets = append(packets, e.Measurements)
		}
	}
	if len(packets) < 3 {
		t.Fatalf("need >= 3 packets, got %d", len(packets))
	}
	// Warm up on packet 0 and 1, then lose packet 2.
	if err := rx.ConsumePacket(packets[0]); err != nil {
		t.Fatal(err)
	}
	if err := rx.ConsumePacket(packets[1]); err != nil {
		t.Fatal(err)
	}
	if sm.WarmSolves.Value() != 1 {
		t.Fatalf("warm solves = %d after two packets, want 1", sm.WarmSolves.Value())
	}
	rx.ConsumeLostPacket()
	if sm.WarmResets.Value() != 1 {
		t.Fatalf("warm resets = %d after gap, want 1", sm.WarmResets.Value())
	}
	if err := rx.ConsumePacket(packets[2]); err != nil {
		t.Fatal(err)
	}
	if sm.WarmSolves.Value() != 1 {
		t.Error("post-gap decode still used a warm seed")
	}

	// Bit-identity: the post-gap window must equal a cold decode.
	cold, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.ConsumePacket(packets[2]); err != nil {
		t.Fatal(err)
	}
	n := cfg.CSWindow
	if n <= 0 {
		n = 512
	}
	got := rx.Signal()
	want := cold.Signal()
	for li := range want {
		tail := got[li][len(got[li])-n:]
		for i := range want[li] {
			if tail[i] != want[li][i] {
				t.Fatalf("lead %d sample %d: post-gap decode not bit-identical to cold", li, i)
			}
		}
	}
}

// TestEngineWarmMatchesInline checks the engine warm path reproduces
// the inline warm path bit for bit and reports its convergence stats
// through the engine's gateway metrics.
func TestEngineWarmMatchesInline(t *testing.T) {
	events, _ := encodeRecord(t, 44, 8)
	cfg := warmConfig(t)

	inline, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inline.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	gm := telemetry.NewGatewayMetrics(reg, nil)
	eng, err := NewEngine(cfg, EngineConfig{Workers: 4, Metrics: gm})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pooled, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pooled.AttachEngine(eng); err != nil {
		t.Fatal(err)
	}
	if err := pooled.ConsumeEvents(events); err != nil {
		t.Fatal(err)
	}
	equalSignals(t, inline.Signal(), pooled.Signal(), "engine warm path")

	if gm.Solver.Solves.Value() == 0 {
		t.Error("engine recorded no solver stats")
	}
	if gm.Solver.WarmSolves.Value() == 0 {
		t.Error("engine recorded no warm solves across a contiguous stream")
	}
	if gm.Solver.Iters.Count() != gm.Solver.Solves.Value() {
		t.Errorf("iters histogram has %d observations for %d solves",
			gm.Solver.Iters.Count(), gm.Solver.Solves.Value())
	}
}

package gateway

import (
	"errors"
	"sync"
	"testing"
)

// goodWindow builds a shape-valid measurement window for cfg.
func goodWindow(t *testing.T, cfg Config) [][]float64 {
	t.Helper()
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := make([][]float64, cfg.Leads)
	for i := range w {
		w[i] = make([]float64, rx.MeasurementLen())
	}
	return w
}

// Submit, SubmitWarm, Decode and DecodeWindows after Close must return
// ErrEngineClosed — a sentinel, not a panic on a closed channel — and
// double-Close must be a safe no-op.
func TestEngineSubmitAfterClose(t *testing.T) {
	_, ncfg := encodeRecord(t, 57, 2)
	cfg := fastConfig(ncfg)
	eng, err := NewEngine(cfg, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := goodWindow(t, cfg)
	eng.Close()
	if _, err := eng.Submit(w); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Submit after Close: got %v, want ErrEngineClosed", err)
	}
	if _, err := eng.SubmitWarm(w, nil); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("SubmitWarm after Close: got %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Decode(w); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Decode after Close: got %v, want ErrEngineClosed", err)
	}
	if _, _, err := eng.DecodeWarm(w, nil); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("DecodeWarm after Close: got %v, want ErrEngineClosed", err)
	}
	if _, err := eng.DecodeWindows([][][]float64{w}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("DecodeWindows after Close: got %v, want ErrEngineClosed", err)
	}
	// The sentinel must remain distinguishable from shape errors.
	if errors.Is(ErrEngineClosed, ErrGateway) {
		t.Error("ErrEngineClosed must not alias ErrGateway")
	}
}

// TestEngineDoubleCloseConcurrent hammers Close against Submit from
// many goroutines: every outcome must be either a decoded window or
// ErrEngineClosed — never a panic, never a hang.
func TestEngineDoubleCloseConcurrent(t *testing.T) {
	_, ncfg := encodeRecord(t, 58, 2)
	cfg := fastConfig(ncfg)
	cfg.Solver.Iters = 4
	eng, err := NewEngine(cfg, EngineConfig{Workers: 2, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := goodWindow(t, cfg)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				j, err := eng.Submit(w)
				if err != nil {
					if !errors.Is(err, ErrEngineClosed) {
						t.Errorf("Submit: got %v, want nil or ErrEngineClosed", err)
					}
					return
				}
				if _, err := j.Wait(); err != nil {
					t.Errorf("Wait: %v", err)
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Close() // racing double (triple) close must stay a no-op
		}()
	}
	wg.Wait()
	eng.Close()
}

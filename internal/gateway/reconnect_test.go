package gateway

import (
	"testing"

	"wbsn/internal/core"
	"wbsn/internal/link"
)

// packetize turns a record's CS events into sequence-numbered link
// packets, the unit a reconnecting transport would replay.
func packetize(events []core.Event) []link.Packet {
	var pkts []link.Packet
	for _, e := range events {
		if e.Kind != core.EventPacket || e.Measurements == nil {
			continue
		}
		pkts = append(pkts, link.Packet{
			Seq:          uint32(len(pkts)),
			WindowStart:  uint32(e.At),
			Measurements: e.Measurements,
		})
	}
	return pkts
}

// A session re-attach mid-record replays packets the receiver has
// already consumed (the client cannot know exactly where the server
// stopped). Duplicates and stale sequence numbers offered after the
// re-attach must be absorbed by the reassembler without corrupting the
// reconstruction or — with warm start on — leaking stale solver state
// into post-gap windows.
func TestReceiverReconnectReplay(t *testing.T) {
	events, ncfg := encodeRecord(t, 61, 10)
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		t.Run(name, func(t *testing.T) {
			cfg := fastConfig(ncfg)
			cfg.WarmStart = warm
			pkts := packetize(events)
			if len(pkts) < 4 {
				t.Fatalf("record too short: %d packets", len(pkts))
			}
			// Reference: every packet exactly once, in order.
			ref, err := NewReceiver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			raRef := link.NewReassembler(ref)
			for _, p := range pkts {
				if err := raRef.Offer(p); err != nil {
					t.Fatal(err)
				}
			}
			// Replay path: consume the first half, then a "reconnect"
			// replays stale packets from the start (dup of everything
			// already consumed), then the record continues, then a late
			// duplicate of the tail arrives once more.
			got, err := NewReceiver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ra := link.NewReassembler(got)
			half := len(pkts) / 2
			for _, p := range pkts[:half] {
				if err := ra.Offer(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range pkts[:half] { // stale replay after re-attach
				if err := ra.Offer(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range pkts[half:] {
				if err := ra.Offer(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := ra.Offer(pkts[len(pkts)-1]); err != nil { // late dup
				t.Fatal(err)
			}
			st := ra.Stats()
			if st.Duplicates != half+1 {
				t.Errorf("duplicates = %d, want %d", st.Duplicates, half+1)
			}
			if st.Filled != 0 {
				t.Errorf("filled = %d, want 0 (no real loss occurred)", st.Filled)
			}
			equalSignals(t, ref.Signal(), got.Signal(), "reconnect replay")
		})
	}
}

// A replay that crosses an ARQ gap: the lost window drops the warm
// state, and stale packets replayed after the gap must not re-seed the
// solver with pre-gap coefficients.
func TestReceiverReconnectAcrossGap(t *testing.T) {
	events, ncfg := encodeRecord(t, 62, 14)
	cfg := fastConfig(ncfg)
	cfg.WarmStart = true
	pkts := packetize(events)
	if len(pkts) < 6 {
		t.Fatalf("record too short: %d packets", len(pkts))
	}
	lost := len(pkts) / 2
	// Reference: in-order delivery with one declared loss.
	ref, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raRef := link.NewReassembler(ref)
	for i, p := range pkts {
		if i == lost {
			if err := raRef.DeclareLost(p.Seq); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := raRef.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	// Replay path: same loss, but a reconnect right after the gap
	// replays the packets before the loss.
	got, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := link.NewReassembler(got)
	for _, p := range pkts[:lost] {
		if err := ra.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ra.DeclareLost(pkts[lost].Seq); err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts[:lost] { // stale replay across the gap
		if err := ra.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pkts[lost+1:] {
		if err := ra.Offer(p); err != nil {
			t.Fatal(err)
		}
	}
	if got.SamplesReceived() != ref.SamplesReceived() {
		t.Fatalf("samples = %d, want %d", got.SamplesReceived(), ref.SamplesReceived())
	}
	equalSignals(t, ref.Signal(), got.Signal(), "replay across gap")
}

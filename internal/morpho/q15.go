package morpho

import "wbsn/internal/fixedpt"

// This file carries the integer-only (Q15) variants of the morphological
// operators — the form actually executed on the node's 16-bit MCU
// (Section IV.A). Because flat-SE erosion/dilation are pure order
// statistics, the Q15 versions are exact (no rounding), so they match
// the float implementations bit-for-bit up to input quantisation.

// ErodeFlatQ15 computes flat erosion over Q15 samples with the monotonic
// wedge (O(1) amortised comparisons per sample), mirroring ErodeFlat.
func ErodeFlatQ15(x []fixedpt.Q15, k int) ([]fixedpt.Q15, error) {
	return slidingExtremumQ15(x, k, true)
}

// DilateFlatQ15 computes flat dilation over Q15 samples.
func DilateFlatQ15(x []fixedpt.Q15, k int) ([]fixedpt.Q15, error) {
	return slidingExtremumQ15(x, k, false)
}

func slidingExtremumQ15(x []fixedpt.Q15, k int, min bool) ([]fixedpt.Q15, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]fixedpt.Q15, n)
	if n == 0 {
		return out, nil
	}
	half := k / 2
	at := func(j int) fixedpt.Q15 { return x[clampIdx(j, n)] }
	better := func(a, b fixedpt.Q15) bool {
		if min {
			return a <= b
		}
		return a >= b
	}
	deque := make([]int, 0, k+1)
	lo := -half
	for j := lo; j < lo+k-1; j++ {
		for len(deque) > 0 && better(at(j), at(deque[len(deque)-1])) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
	}
	for i := 0; i < n; i++ {
		j := i - half + k - 1
		for len(deque) > 0 && better(at(j), at(deque[len(deque)-1])) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
		start := i - half
		for deque[0] < start {
			deque = deque[1:]
		}
		out[i] = at(deque[0])
	}
	return out, nil
}

// OpenFlatQ15 computes opening (erosion then dilation) in Q15.
func OpenFlatQ15(x []fixedpt.Q15, k int) ([]fixedpt.Q15, error) {
	e, err := ErodeFlatQ15(x, k)
	if err != nil {
		return nil, err
	}
	return DilateFlatQ15(e, k)
}

// CloseFlatQ15 computes closing (dilation then erosion) in Q15.
func CloseFlatQ15(x []fixedpt.Q15, k int) ([]fixedpt.Q15, error) {
	d, err := DilateFlatQ15(x, k)
	if err != nil {
		return nil, err
	}
	return ErodeFlatQ15(d, k)
}

// FilterQ15 runs the full two-stage conditioning filter over Q15 samples
// (baseline correction by open/close, then open/close-average noise
// suppression), the node-resident form of Filter. The only rounding is
// the final halving of the open+close average (one arithmetic shift).
func FilterQ15(x []fixedpt.Q15, cfg FilterConfig) ([]fixedpt.Q15, error) {
	c := cfg.withDefaults()
	opened, err := OpenFlatQ15(x, c.BaselineSE)
	if err != nil {
		return nil, err
	}
	base, err := CloseFlatQ15(opened, c.BaselineSE+c.BaselineSE/2)
	if err != nil {
		return nil, err
	}
	corrected := make([]fixedpt.Q15, len(x))
	for i := range x {
		corrected[i] = fixedpt.SatSub(x[i], base[i])
	}
	o, err := OpenFlatQ15(corrected, c.NoiseSE)
	if err != nil {
		return nil, err
	}
	cl, err := CloseFlatQ15(corrected, c.NoiseSE)
	if err != nil {
		return nil, err
	}
	out := make([]fixedpt.Q15, len(x))
	for i := range out {
		// (o + cl) / 2 without intermediate overflow: halve both first.
		out[i] = fixedpt.Q15(int32(o[i])/2 + int32(cl[i])/2)
	}
	return out, nil
}

// MMDTransformQ15 computes the morphological derivative over Q15 samples
// at scale s. The division by s is an integer division; the result is
// exact for the window extrema arithmetic up to that single truncation.
func MMDTransformQ15(x []fixedpt.Q15, s int) ([]fixedpt.Q15, error) {
	if s < 1 {
		return nil, ErrBadSE
	}
	dil, err := DilateFlatQ15(x, 2*s+1)
	if err != nil {
		return nil, err
	}
	ero, err := ErodeFlatQ15(x, 2*s+1)
	if err != nil {
		return nil, err
	}
	out := make([]fixedpt.Q15, len(x))
	for i := range x {
		v := (int32(dil[i]) + int32(ero[i]) - 2*int32(x[i])) / int32(s)
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = fixedpt.Q15(v)
	}
	return out, nil
}

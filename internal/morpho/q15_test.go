package morpho

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wbsn/internal/fixedpt"
)

func TestQ15ErodeDilateMatchFloatExactly(t *testing.T) {
	// Order statistics commute with quantisation: the Q15 morphology of
	// the quantised signal must equal the quantisation of the float
	// morphology.
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + int(kk%60)
		k := 1 + int(kk%15)
		xq := make([]fixedpt.Q15, n)
		xf := make([]float64, n)
		for i := range xq {
			xq[i] = fixedpt.FromFloat(rng.Float64()*1.6 - 0.8)
			xf[i] = xq[i].Float()
		}
		eq, _ := ErodeFlatQ15(xq, k)
		ef, _ := ErodeFlat(xf, k)
		dq, _ := DilateFlatQ15(xq, k)
		df, _ := DilateFlat(xf, k)
		for i := 0; i < n; i++ {
			if eq[i].Float() != ef[i] || dq[i].Float() != df[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQ15OpenCloseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]fixedpt.Q15, 200)
	for i := range x {
		x[i] = fixedpt.FromFloat(rng.Float64() - 0.5)
	}
	o, err := OpenFlatQ15(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CloseFlatQ15(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if o[i] > x[i] {
			t.Fatalf("Q15 opening not anti-extensive at %d", i)
		}
		if c[i] < x[i] {
			t.Fatalf("Q15 closing not extensive at %d", i)
		}
	}
}

func TestQ15Validation(t *testing.T) {
	x := make([]fixedpt.Q15, 4)
	if _, err := ErodeFlatQ15(x, 0); err != ErrBadSE {
		t.Error("k=0 should fail")
	}
	if _, err := OpenFlatQ15(x, -1); err != ErrBadSE {
		t.Error("negative k should fail")
	}
	if _, err := CloseFlatQ15(x, 0); err != ErrBadSE {
		t.Error("k=0 closing should fail")
	}
	if _, err := MMDTransformQ15(x, 0); err != ErrBadSE {
		t.Error("scale 0 should fail")
	}
	if _, err := FilterQ15(nil, FilterConfig{Fs: 256}); err != nil {
		t.Error("empty input should not error")
	}
}

func TestFilterQ15TracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1500
	xf := make([]float64, n)
	for i := range xf {
		xf[i] = 0.3*math.Sin(2*math.Pi*float64(i)/600) + 0.002*rng.NormFloat64()
	}
	for p := 100; p < n-10; p += 180 {
		for j := -4; j <= 4; j++ {
			xf[p+j] += 0.5 * (1 - math.Abs(float64(j))/5)
		}
	}
	xq := fixedpt.FromSlice(xf)
	cfg := FilterConfig{Fs: 256}
	ff, err := Filter(xf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := FilterQ15(xq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range ff {
		if d := math.Abs(fq[i].Float() - ff[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.005 {
		t.Errorf("Q15 filter deviates from float by %v (want <= 0.005)", worst)
	}
}

func TestMMDTransformQ15MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 300
	xf := make([]float64, n)
	for i := range xf {
		xf[i] = rng.Float64()*0.8 - 0.4
	}
	xq := fixedpt.FromSlice(xf)
	mf, err := MMDTransform(xf, 6)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := MMDTransformQ15(xq, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mf {
		if d := math.Abs(mq[i].Float() - mf[i]); d > 0.001 {
			t.Fatalf("Q15 MMD deviates at %d: %v vs %v", i, mq[i].Float(), mf[i])
		}
	}
}

package morpho

// This file implements the multiscale morphological-derivative (MMD)
// transform of ref [13] (Sun, Chan, Krishnan, "Characteristic wave
// detection in ECG signal using morphological transform", BMC
// Cardiovascular Disorders 2005), the alternative delineation strategy of
// Section III.C: "minima in the transformed signal indicate the presence
// of peaks in the original wave, while maxima (or sudden changes in
// slope) delimit the start and end point of each wave".
//
// The transform at scale s is the scaled morphological Laplacian
//
//	M_s(x)[i] = (dilation_s(x)[i] + erosion_s(x)[i] - 2*x[i]) / s
//
// with a flat structuring element of length 2s+1: at a sharp positive
// peak the dilation equals the sample itself while the erosion drops,
// giving a deep negative minimum; at a wave onset/offset the erosion
// stays at the baseline while the dilation already sees the wave, giving
// a positive maximum. Note this needs exactly the window maximum, window
// minimum and centre value — the three quantities the paper's embedded
// optimisation tracks.

// MMDTransform computes the morphological derivative of x at scale s
// (s >= 1, in samples). Output has the same length as x; the s samples at
// each border are computed with edge replication.
func MMDTransform(x []float64, s int) ([]float64, error) {
	if s < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	dil, err := DilateFlat(x, 2*s+1)
	if err != nil {
		return nil, err
	}
	ero, err := ErodeFlat(x, 2*s+1)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	inv := 1 / float64(s)
	for i := 0; i < n; i++ {
		out[i] = (dil[i] + ero[i] - 2*x[i]) * inv
	}
	return out, nil
}

// MMDMultiscale computes the transform at several scales and returns one
// output per scale, in the given order. Delineators match extrema across
// scales to separate QRS (sharp, strong at small scales) from P/T waves
// (smooth, strong at larger scales).
func MMDMultiscale(x []float64, scales []int) ([][]float64, error) {
	out := make([][]float64, len(scales))
	for i, s := range scales {
		m, err := MMDTransform(x, s)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// windowStat is the embedded streaming implementation hinted at in
// Section IV.A: for a flat SE only the window centre value, maximum and
// minimum are tracked while sliding. MMDStream exposes it as an online
// transformer that emits one output sample per input sample after a
// latency of 2s samples.
type MMDStream struct {
	s     int
	buf   []float64 // circular window of length 2s+1
	count int
	pos   int
}

// NewMMDStream creates a streaming morphological-derivative transformer
// at scale s.
func NewMMDStream(s int) (*MMDStream, error) {
	if s < 1 {
		return nil, ErrBadSE
	}
	return &MMDStream{s: s, buf: make([]float64, 2*s+1)}, nil
}

// Latency returns the number of samples before the first valid output.
func (m *MMDStream) Latency() int { return 2 * m.s }

// Step pushes one sample; once the window is full it returns the
// transform value for the window centre and ok=true.
func (m *MMDStream) Step(x float64) (y float64, ok bool) {
	m.buf[m.pos] = x
	m.pos++
	if m.pos == len(m.buf) {
		m.pos = 0
	}
	if m.count < len(m.buf) {
		m.count++
		if m.count < len(m.buf) {
			return 0, false
		}
	}
	// Window is full: the transform needs only the window minimum,
	// maximum and centre value — exactly the Section IV.A optimisation.
	k := len(m.buf)
	minV, maxV := m.buf[0], m.buf[0]
	for _, v := range m.buf[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	centreIdx := m.pos - 1 - m.s
	for centreIdx < 0 {
		centreIdx += k
	}
	centre := m.buf[centreIdx]
	return (maxV + minV - 2*centre) / float64(m.s), true
}

// Reset clears the stream state.
func (m *MMDStream) Reset() {
	m.count, m.pos = 0, 0
	for i := range m.buf {
		m.buf[i] = 0
	}
}

package morpho

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErodeDilateRejectBadSE(t *testing.T) {
	x := []float64{1, 2, 3}
	if _, err := ErodeFlat(x, 0); err != ErrBadSE {
		t.Error("ErodeFlat with k=0 should fail")
	}
	if _, err := DilateFlat(x, -1); err != ErrBadSE {
		t.Error("DilateFlat with k<0 should fail")
	}
	if _, err := ErodeFlatNaive(x, 0); err != ErrBadSE {
		t.Error("naive erode with k=0 should fail")
	}
	if _, err := DilateFlatNaive(x, 0); err != ErrBadSE {
		t.Error("naive dilate with k=0 should fail")
	}
}

func TestErodeBasic(t *testing.T) {
	x := []float64{5, 1, 5, 5, 5}
	e, err := ErodeFlat(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1, 5, 5}
	for i := range want {
		if e[i] != want[i] {
			t.Errorf("ErodeFlat[%d] = %v, want %v", i, e[i], want[i])
		}
	}
}

func TestDilateBasic(t *testing.T) {
	x := []float64{0, 9, 0, 0, 0}
	d, err := DilateFlat(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 9, 9, 0, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("DilateFlat[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

// Property: the van Herk implementation matches the naive O(n*k) one for
// random signals and window lengths (the ablation's correctness leg).
func TestVanHerkMatchesNaive(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(kk%100)
		k := 1 + int(kk%25)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		e1, _ := ErodeFlat(x, k)
		e2, _ := ErodeFlatNaive(x, k)
		d1, _ := DilateFlat(x, k)
		d2, _ := DilateFlatNaive(x, k)
		for i := 0; i < n; i++ {
			if e1[i] != e2[i] || d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: erosion-dilation duality, erode(x) = -dilate(-x).
func TestErosionDilationDuality(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		k := 1 + int(kk%15)
		x := make([]float64, n)
		neg := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			neg[i] = -x[i]
		}
		e, _ := ErodeFlat(x, k)
		d, _ := DilateFlat(neg, k)
		for i := range e {
			if e[i] != -d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Properties: opening is anti-extensive (<= x), closing extensive (>= x),
// both idempotent.
func TestOpeningClosingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	k := 7
	o, err := OpenFlat(x, k)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CloseFlat(x, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if o[i] > x[i]+1e-12 {
			t.Fatalf("opening not anti-extensive at %d: %v > %v", i, o[i], x[i])
		}
		if c[i] < x[i]-1e-12 {
			t.Fatalf("closing not extensive at %d: %v < %v", i, c[i], x[i])
		}
	}
	oo, _ := OpenFlat(o, k)
	cc, _ := CloseFlat(c, k)
	for i := range x {
		if math.Abs(oo[i]-o[i]) > 1e-12 {
			t.Fatalf("opening not idempotent at %d", i)
		}
		if math.Abs(cc[i]-c[i]) > 1e-12 {
			t.Fatalf("closing not idempotent at %d", i)
		}
	}
}

func TestOpeningRemovesNarrowPeak(t *testing.T) {
	x := make([]float64, 50)
	x[25] = 10 // single-sample spike
	o, err := OpenFlat(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range o {
		if v != 0 {
			t.Errorf("opening left residue %v at %d", v, i)
		}
	}
}

func TestClosingFillsNarrowPit(t *testing.T) {
	x := make([]float64, 50)
	x[25] = -10
	c, err := CloseFlat(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if v != 0 {
			t.Errorf("closing left residue %v at %d", v, i)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	e, err := ErodeFlat(nil, 3)
	if err != nil || len(e) != 0 {
		t.Error("ErodeFlat(nil) should return empty, nil error")
	}
}

func TestMonotoneIncreasing(t *testing.T) {
	// Erosion/dilation of a monotone signal is monotone.
	x := make([]float64, 30)
	for i := range x {
		x[i] = float64(i)
	}
	e, _ := ErodeFlat(x, 5)
	d, _ := DilateFlat(x, 5)
	for i := 1; i < len(x); i++ {
		if e[i] < e[i-1] || d[i] < d[i-1] {
			t.Fatalf("monotonicity violated at %d", i)
		}
	}
}

// Property: the monomorphic value-carrying wedge handles tie plateaus
// exactly like the naive scan — the pop-on-equal rule only changes which
// equal-valued index survives, never the forwarded sample value.
func TestSlidingExtremumTiePlateaus(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(kk%60)
		k := 1 + int(kk%17)
		x := make([]float64, n)
		for i := range x {
			// Coarse quantisation forces long runs of exactly equal values.
			x[i] = float64(rng.Intn(4))
		}
		e1, _ := ErodeFlat(x, k)
		e2, _ := ErodeFlatNaive(x, k)
		d1, _ := DilateFlat(x, k)
		d2, _ := DilateFlatNaive(x, k)
		for i := 0; i < n; i++ {
			if e1[i] != e2[i] || d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Windows larger than the signal exercise the all-border path of the
// wedge (every virtual index clamps).
func TestSlidingExtremumWindowLargerThanSignal(t *testing.T) {
	x := []float64{3, -1, 4, 1, -5}
	for _, k := range []int{len(x), len(x) + 1, 3 * len(x)} {
		e1, err := ErodeFlat(x, k)
		if err != nil {
			t.Fatal(err)
		}
		e2, _ := ErodeFlatNaive(x, k)
		d1, _ := DilateFlat(x, k)
		d2, _ := DilateFlatNaive(x, k)
		for i := range x {
			if e1[i] != e2[i] || d1[i] != d2[i] {
				t.Fatalf("k=%d i=%d: erode %g/%g dilate %g/%g", k, i, e1[i], e2[i], d1[i], d2[i])
			}
		}
	}
}

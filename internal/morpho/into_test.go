package morpho

import (
	"math/rand"
	"testing"
)

func noisy(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// Into variants must match their allocating counterparts exactly, and a
// reused scratch must not bleed state between calls.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	x := noisy(1024, 5)
	cfg := FilterConfig{Fs: 256}
	var s Scratch
	out := make([]float64, len(x))
	for rep := 0; rep < 3; rep++ {
		for _, k := range []int{1, 3, 51} {
			want, err := ErodeFlat(x, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := ErodeFlatInto(x, k, out, &s); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("ErodeFlatInto k=%d sample %d: %g != %g", k, i, out[i], want[i])
				}
			}
			want, err = DilateFlat(x, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := DilateFlatInto(x, k, out, &s); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("DilateFlatInto k=%d sample %d: %g != %g", k, i, out[i], want[i])
				}
			}
			want, err = OpenFlat(x, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := OpenFlatInto(x, k, out, &s); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("OpenFlatInto k=%d sample %d: %g != %g", k, i, out[i], want[i])
				}
			}
			want, err = CloseFlat(x, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := CloseFlatInto(x, k, out, &s); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("CloseFlatInto k=%d sample %d: %g != %g", k, i, out[i], want[i])
				}
			}
		}
		want, err := Filter(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := FilterInto(x, cfg, out, &s); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("FilterInto sample %d: %g != %g", i, out[i], want[i])
			}
		}
	}
}

// FilterInto documents that out may alias x.
func TestFilterIntoInPlace(t *testing.T) {
	x := noisy(512, 6)
	cfg := FilterConfig{Fs: 256}
	want, err := Filter(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	if err := FilterInto(x, cfg, x, &s); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("in-place FilterInto sample %d: %g != %g", i, x[i], want[i])
		}
	}
}

func TestFilterLeadsIntoMatchesFilterLeads(t *testing.T) {
	leads := [][]float64{noisy(512, 7), noisy(512, 8), noisy(400, 9)}
	cfg := FilterConfig{Fs: 256}
	want, err := FilterLeads(leads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	var out [][]float64
	for rep := 0; rep < 2; rep++ {
		out, err = FilterLeadsInto(leads, cfg, out, &s)
		if err != nil {
			t.Fatal(err)
		}
		for li := range want {
			for i := range want[li] {
				if out[li][i] != want[li][i] {
					t.Fatalf("rep %d lead %d sample %d differs", rep, li, i)
				}
			}
		}
	}
}

func TestFilterIntoZeroAlloc(t *testing.T) {
	x := noisy(1024, 10)
	cfg := FilterConfig{Fs: 256}
	out := make([]float64, len(x))
	var s Scratch
	if err := FilterInto(x, cfg, out, &s); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(10, func() {
		if err := FilterInto(x, cfg, out, &s); err != nil {
			t.Fatal(err)
		}
	}); a > 0 {
		t.Errorf("FilterInto allocates %.1f/op in steady state", a)
	}
}

func TestIntoVariantErrors(t *testing.T) {
	var s Scratch
	x := noisy(64, 11)
	out := make([]float64, 64)
	if err := ErodeFlatInto(x, 0, out, &s); err != ErrBadSE {
		t.Errorf("k=0: got %v", err)
	}
	if err := FilterInto(x, FilterConfig{Fs: 256}, out[:32], &s); err != ErrBadSE {
		t.Errorf("short out: got %v", err)
	}
}

package morpho

import (
	"math"
	"math/rand"
	"testing"
)

// synthBeatTrain builds a crude ECG-like signal: narrow tall R spikes over
// a flat line, with optional baseline drift and impulse noise.
func synthBeatTrain(n int, drift, impulses bool, rng *rand.Rand) (x []float64, rIdx []int) {
	x = make([]float64, n)
	for p := 50; p < n-10; p += 180 {
		// Triangular QRS ~9 samples wide.
		for i := -4; i <= 4; i++ {
			x[p+i] += 1.2 * (1 - math.Abs(float64(i))/5)
		}
		rIdx = append(rIdx, p)
	}
	if drift {
		for i := range x {
			x[i] += 0.8 * math.Sin(2*math.Pi*float64(i)/600)
		}
	}
	if impulses {
		for i := 25; i < n; i += 97 {
			x[i] += 0.5 * rng.NormFloat64()
		}
	}
	return x, rIdx
}

func TestBaselineEstimateTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	x, _ := synthBeatTrain(n, true, false, rng)
	cfg := FilterConfig{Fs: 256}
	base, err := BaselineEstimate(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate must follow the sine drift: correlation with the known
	// drift should be high.
	drift := make([]float64, n)
	for i := range drift {
		drift[i] = 0.8 * math.Sin(2*math.Pi*float64(i)/600)
	}
	var sxy, sxx, syy float64
	for i := 100; i < n-100; i++ {
		a, b := base[i], drift[i]
		sxy += a * b
		sxx += a * a
		syy += b * b
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r < 0.9 {
		t.Errorf("baseline estimate correlation with drift = %v, want > 0.9", r)
	}
}

func TestRemoveBaselineFlattens(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x, _ := synthBeatTrain(n, true, false, rng)
	cfg := FilterConfig{Fs: 256}
	y, err := RemoveBaseline(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Isoelectric segments (between beats) should be near zero after
	// correction even though the input drifted by ±0.8.
	worst := 0.0
	for i := 120; i < n-120; i += 180 { // midway between beats
		if v := math.Abs(y[i]); v > worst {
			worst = v
		}
	}
	if worst > 0.25 {
		t.Errorf("isoelectric level after baseline removal = %v, want < 0.25", worst)
	}
}

func TestRemoveBaselinePreservesQRS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2000
	x, rIdx := synthBeatTrain(n, true, false, rng)
	cfg := FilterConfig{Fs: 256}
	y, err := RemoveBaseline(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rIdx {
		if p < 50 || p > n-50 {
			continue
		}
		// R amplitude relative to local isoelectric level must survive.
		amp := y[p] - y[p-40]
		if amp < 0.9 {
			t.Errorf("R amplitude at %d reduced to %v after baseline removal", p, amp)
		}
	}
}

func TestSuppressNoiseClipsImpulses(t *testing.T) {
	n := 600
	x := make([]float64, n)
	x[100], x[300] = 1.0, -1.0 // isolated impulses
	cfg := FilterConfig{Fs: 256}
	y, err := SuppressNoise(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The open/close average halves single-sample impulses at worst; with
	// SE=3 an isolated spike is fully removed by opening and survives in
	// closing, so the average is half. Check strong attenuation.
	if math.Abs(y[100]) > 0.55 || math.Abs(y[300]) > 0.55 {
		t.Errorf("impulses not attenuated: %v, %v", y[100], y[300])
	}
}

func TestSuppressNoisePreservesWideWaves(t *testing.T) {
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 128) // wide smooth wave
	}
	cfg := FilterConfig{Fs: 256}
	y, err := SuppressNoise(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := 10; i < n-10; i++ {
		if d := math.Abs(y[i] - x[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.02 {
		t.Errorf("smooth wave distorted by noise suppression: max diff %v", maxDiff)
	}
}

func TestFilterEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	x, rIdx := synthBeatTrain(n, true, true, rng)
	cfg := FilterConfig{Fs: 256}
	y, err := Filter(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != n {
		t.Fatalf("filtered length %d, want %d", len(y), n)
	}
	// QRS peaks must remain the dominant features.
	for _, p := range rIdx[1 : len(rIdx)-1] {
		if y[p] < 0.5 {
			t.Errorf("beat at %d attenuated to %v", p, y[p])
		}
	}
}

func TestFilterLeads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, _ := synthBeatTrain(500, false, false, rng)
	b, _ := synthBeatTrain(700, true, false, rng)
	out, err := FilterLeads([][]float64{a, b}, FilterConfig{Fs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 500 || len(out[1]) != 700 {
		t.Error("FilterLeads changed shapes")
	}
}

func TestFilterConfigDefaults(t *testing.T) {
	c := (&FilterConfig{Fs: 256}).withDefaults()
	if c.BaselineSE != 51 {
		t.Errorf("default BaselineSE = %d, want 51 (0.2*256 rounded)", c.BaselineSE)
	}
	if c.NoiseSE != 3 {
		t.Errorf("default NoiseSE = %d, want 3", c.NoiseSE)
	}
	tiny := (&FilterConfig{Fs: 10}).withDefaults()
	if tiny.BaselineSE < 3 {
		t.Error("BaselineSE floor of 3 not applied")
	}
}

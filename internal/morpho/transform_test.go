package morpho

import (
	"math"
	"testing"
)

func gaussianBump(n, centre int, width, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		d := float64(i - centre)
		x[i] = amp * math.Exp(-d*d/(2*width*width))
	}
	return x
}

func TestMMDTransformRejectsBadScale(t *testing.T) {
	if _, err := MMDTransform([]float64{1, 2}, 0); err != ErrBadSE {
		t.Error("scale 0 should fail")
	}
}

func TestMMDPeakGivesMinimum(t *testing.T) {
	// Ref [13]: minima in the transform indicate peaks in the original.
	n := 256
	x := gaussianBump(n, 128, 4, 1)
	m, err := MMDTransform(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	minIdx := 0
	for i := range m {
		if m[i] < m[minIdx] {
			minIdx = i
		}
	}
	if d := minIdx - 128; d < -2 || d > 2 {
		t.Errorf("transform minimum at %d, peak at 128", minIdx)
	}
	if m[minIdx] >= 0 {
		t.Errorf("transform at peak should be negative, got %v", m[minIdx])
	}
}

func TestMMDOnsetOffsetGiveMaxima(t *testing.T) {
	// Maxima delimit the start and end of each wave.
	n := 256
	x := gaussianBump(n, 128, 5, 1)
	m, err := MMDTransform(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Find the two largest local maxima.
	bestL, bestR := -1, -1
	for i := 1; i < 128; i++ {
		if m[i] > m[i-1] && m[i] >= m[i+1] && (bestL == -1 || m[i] > m[bestL]) {
			bestL = i
		}
	}
	for i := 129; i < n-1; i++ {
		if m[i] > m[i-1] && m[i] >= m[i+1] && (bestR == -1 || m[i] > m[bestR]) {
			bestR = i
		}
	}
	if bestL == -1 || bestR == -1 {
		t.Fatal("no onset/offset maxima found")
	}
	// They must straddle the wave roughly +/- 2-3 widths from centre.
	if bestL > 125 || bestL < 100 {
		t.Errorf("onset maximum at %d, want in [100,125]", bestL)
	}
	if bestR < 131 || bestR > 156 {
		t.Errorf("offset maximum at %d, want in [131,156]", bestR)
	}
}

func TestMMDNegativePeakGivesPositiveResponse(t *testing.T) {
	// A negative wave (e.g. Q/S) flips the transform sign at the trough:
	// -2*x[i] dominates and is positive there.
	n := 256
	x := gaussianBump(n, 128, 4, -1)
	m, err := MMDTransform(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	maxIdx := 0
	for i := range m {
		if m[i] > m[maxIdx] {
			maxIdx = i
		}
	}
	if d := maxIdx - 128; d < -2 || d > 2 {
		t.Errorf("transform maximum at %d for negative peak at 128", maxIdx)
	}
}

func TestMMDMultiscale(t *testing.T) {
	x := gaussianBump(300, 150, 3, 1)
	scales := []int{2, 4, 8}
	out, err := MMDMultiscale(x, scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d scales", len(out))
	}
	for i, m := range out {
		if len(m) != len(x) {
			t.Errorf("scale %d output length %d", scales[i], len(m))
		}
	}
	if _, err := MMDMultiscale(x, []int{2, 0}); err == nil {
		t.Error("invalid scale inside list should fail")
	}
}

func TestMMDScaleSelectivity(t *testing.T) {
	// A narrow spike responds more strongly (relative to amplitude) at
	// small scales than a wide wave does; this is how QRS is separated
	// from P/T.
	n := 512
	narrow := gaussianBump(n, 128, 2, 1)
	wide := gaussianBump(n, 384, 20, 1)
	x := make([]float64, n)
	for i := range x {
		x[i] = narrow[i] + wide[i]
	}
	m, err := MMDTransform(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	respNarrow := math.Abs(m[128])
	respWide := math.Abs(m[384])
	if respNarrow < 4*respWide {
		t.Errorf("small-scale response narrow=%v wide=%v; expected strong selectivity", respNarrow, respWide)
	}
}

func TestMMDStream(t *testing.T) {
	s := 4
	ms, err := NewMMDStream(s)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Latency() != 2*s {
		t.Errorf("latency = %d, want %d", ms.Latency(), 2*s)
	}
	x := gaussianBump(128, 64, 3, 1)
	var outs []float64
	var firstIdx int = -1
	for i, v := range x {
		y, ok := ms.Step(v)
		if ok {
			if firstIdx == -1 {
				firstIdx = i
			}
			outs = append(outs, y)
		}
	}
	if firstIdx != 2*s {
		t.Errorf("first output at input index %d, want %d", firstIdx, 2*s)
	}
	// Minimum of the streamed transform aligns with the peak (output i
	// corresponds to input i - s).
	minIdx := 0
	for i := range outs {
		if outs[i] < outs[minIdx] {
			minIdx = i
		}
	}
	centreInput := minIdx + firstIdx - s
	if d := centreInput - 64; d < -2 || d > 2 {
		t.Errorf("stream minimum maps to input %d, peak at 64", centreInput)
	}
	ms.Reset()
	if _, ok := ms.Step(1); ok {
		t.Error("Reset did not clear fill state")
	}
	if _, err := NewMMDStream(0); err == nil {
		t.Error("NewMMDStream(0) should fail")
	}
}

// Package morpho implements 1-D mathematical morphology over sampled
// bio-signals: erosion, dilation, opening and closing with flat
// structuring elements, the morphological noise filter of ref [9]
// (Sun, Chan, Krishnan 2002) and the multiscale morphological-derivative
// transform used for ECG delineation in ref [13].
//
// Section IV.A of the paper singles out the embedded optimisation
// implemented here: "if a flat structuring element is employed, the
// computational demands of the morphological operations can be
// drastically reduced by keeping track of only the center value, maximum
// and minimum in a sliding window of the input signal". ErodeFlat and
// DilateFlat therefore use the van Herk/Gil-Werman sliding-window
// algorithm, which costs O(1) comparisons per sample independent of the
// structuring-element length; the naive O(k) variants are retained for
// the ablation benchmark.
package morpho

import "errors"

// ErrBadSE is returned when a structuring-element length is not positive.
var ErrBadSE = errors.New("morpho: structuring element length must be >= 1")

// Scratch holds the reusable work buffers of the Into operator variants.
// A zero Scratch is ready to use; buffers grow on demand. One Scratch
// serves one operator chain at a time (not concurrency-safe). Buffers
// handed to Into functions as out must be caller-owned — never slices
// returned by this scratch.
type Scratch struct {
	idx  []int
	vals []float64
	bufs [4][]float64
}

// deque returns the wedge index buffer, grown to n entries.
func (s *Scratch) deque(n int) []int {
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	return s.idx[:n]
}

// values returns the wedge value buffer, grown to n entries. It rides
// alongside the index buffer so wedge comparisons read cached values
// instead of re-indexing the input through border clamping.
func (s *Scratch) values(n int) []float64 {
	if cap(s.vals) < n {
		s.vals = make([]float64, n)
	}
	return s.vals[:n]
}

// buffer returns work buffer i, grown to n samples.
func (s *Scratch) buffer(i, n int) []float64 {
	if cap(s.bufs[i]) < n {
		s.bufs[i] = make([]float64, n)
	}
	return s.bufs[i][:n]
}

// ErodeFlatNaive computes flat erosion (sliding minimum) with a centred
// window of length k using the direct O(n*k) algorithm. Borders use edge
// replication. Kept as the baseline for BenchmarkAblationVanHerk.
func ErodeFlatNaive(x []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]float64, n)
	half := k / 2
	for i := 0; i < n; i++ {
		lo := i - half
		hi := lo + k - 1
		m := x[clampIdx(lo, n)]
		for j := lo + 1; j <= hi; j++ {
			v := x[clampIdx(j, n)]
			if v < m {
				m = v
			}
		}
		out[i] = m
	}
	return out, nil
}

// DilateFlatNaive computes flat dilation (sliding maximum) with the
// direct O(n*k) algorithm.
func DilateFlatNaive(x []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]float64, n)
	half := k / 2
	for i := 0; i < n; i++ {
		lo := i - half
		hi := lo + k - 1
		m := x[clampIdx(lo, n)]
		for j := lo + 1; j <= hi; j++ {
			v := x[clampIdx(j, n)]
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out, nil
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ErodeFlat computes flat erosion with a centred window of length k in
// O(1) amortised comparisons per sample (monotonic-deque sliding
// minimum). Borders use edge replication, matching the naive variant
// exactly.
func ErodeFlat(x []float64, k int) ([]float64, error) {
	return slidingExtremumAlloc(x, k, true)
}

// DilateFlat computes flat dilation with a centred window of length k in
// O(1) amortised comparisons per sample.
func DilateFlat(x []float64, k int) ([]float64, error) {
	return slidingExtremumAlloc(x, k, false)
}

// ErodeFlatInto is ErodeFlat writing into out (len(x)), drawing the
// deque from s — allocation-free in steady state. out must not alias x.
func ErodeFlatInto(x []float64, k int, out []float64, s *Scratch) error {
	return slidingMinInto(x, k, out, s)
}

// DilateFlatInto is DilateFlat writing into out (len(x)), drawing the
// deque from s. out must not alias x.
func DilateFlatInto(x []float64, k int, out []float64, s *Scratch) error {
	return slidingMaxInto(x, k, out, s)
}

func slidingExtremumAlloc(x []float64, k int, min bool) ([]float64, error) {
	out := make([]float64, len(x))
	var s Scratch
	var err error
	if min {
		err = slidingMinInto(x, k, out, &s)
	} else {
		err = slidingMaxInto(x, k, out, &s)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// slidingMinInto and slidingMaxInto implement the monotonic wedge:
// indices whose values can still become the window extremum, in
// extremum-first order. They are deliberately monomorphic twins —
// sliding extrema dominate the conditioning filter's CPU time, and the
// earlier shared implementation spent most of it calling `at`/`better`
// closures. The wedge carries each candidate's value alongside its
// index, so pops and head reads never re-index the input through border
// clamping; the selected output bits are unchanged because comparisons
// only choose which input sample to forward.
//
// Virtual padded signal of length n + k (edge replication); the window
// for output i covers virtual indices [i-half, i-half+k-1]. The wedge
// only ever advances its head, so flat n+k buffers replace a
// reallocating deque. out must not alias x.
func slidingMinInto(x []float64, k int, out []float64, s *Scratch) error {
	if k < 1 {
		return ErrBadSE
	}
	n := len(x)
	if len(out) != n {
		return ErrBadSE
	}
	if n == 0 {
		return nil
	}
	half := k / 2
	idx := s.deque(n + k)
	vals := s.values(n + k)
	head, tail := 0, 0 // live wedge is idx/vals[head:tail]
	// Pre-fill the first window except its last element.
	for j := -half; j < -half+k-1; j++ {
		v := x[clampIdx(j, n)]
		for tail > head && v <= vals[tail-1] {
			tail--
		}
		idx[tail], vals[tail] = j, v
		tail++
	}
	for i := 0; i < n; i++ {
		j := i - half + k - 1 // new trailing element entering the window
		v := x[clampIdx(j, n)]
		for tail > head && v <= vals[tail-1] {
			tail--
		}
		idx[tail], vals[tail] = j, v
		tail++
		// Expire indices left of the window.
		start := i - half
		for idx[head] < start {
			head++
		}
		out[i] = vals[head]
	}
	return nil
}

func slidingMaxInto(x []float64, k int, out []float64, s *Scratch) error {
	if k < 1 {
		return ErrBadSE
	}
	n := len(x)
	if len(out) != n {
		return ErrBadSE
	}
	if n == 0 {
		return nil
	}
	half := k / 2
	idx := s.deque(n + k)
	vals := s.values(n + k)
	head, tail := 0, 0
	for j := -half; j < -half+k-1; j++ {
		v := x[clampIdx(j, n)]
		for tail > head && v >= vals[tail-1] {
			tail--
		}
		idx[tail], vals[tail] = j, v
		tail++
	}
	for i := 0; i < n; i++ {
		j := i - half + k - 1
		v := x[clampIdx(j, n)]
		for tail > head && v >= vals[tail-1] {
			tail--
		}
		idx[tail], vals[tail] = j, v
		tail++
		start := i - half
		for idx[head] < start {
			head++
		}
		out[i] = vals[head]
	}
	return nil
}

// OpenFlat computes morphological opening (erosion then dilation) with a
// flat structuring element of length k: it removes positive peaks
// narrower than k.
func OpenFlat(x []float64, k int) ([]float64, error) {
	e, err := ErodeFlat(x, k)
	if err != nil {
		return nil, err
	}
	return DilateFlat(e, k)
}

// CloseFlat computes morphological closing (dilation then erosion): it
// fills negative pits narrower than k.
func CloseFlat(x []float64, k int) ([]float64, error) {
	d, err := DilateFlat(x, k)
	if err != nil {
		return nil, err
	}
	return ErodeFlat(d, k)
}

// OpenFlatInto is OpenFlat writing into out, with intermediates from s.
// out must not alias x.
func OpenFlatInto(x []float64, k int, out []float64, s *Scratch) error {
	t := s.buffer(0, len(x))
	if err := ErodeFlatInto(x, k, t, s); err != nil {
		return err
	}
	return DilateFlatInto(t, k, out, s)
}

// CloseFlatInto is CloseFlat writing into out, with intermediates from
// s. out must not alias x.
func CloseFlatInto(x []float64, k int, out []float64, s *Scratch) error {
	t := s.buffer(0, len(x))
	if err := DilateFlatInto(x, k, t, s); err != nil {
		return err
	}
	return ErodeFlatInto(t, k, out, s)
}

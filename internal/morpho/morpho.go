// Package morpho implements 1-D mathematical morphology over sampled
// bio-signals: erosion, dilation, opening and closing with flat
// structuring elements, the morphological noise filter of ref [9]
// (Sun, Chan, Krishnan 2002) and the multiscale morphological-derivative
// transform used for ECG delineation in ref [13].
//
// Section IV.A of the paper singles out the embedded optimisation
// implemented here: "if a flat structuring element is employed, the
// computational demands of the morphological operations can be
// drastically reduced by keeping track of only the center value, maximum
// and minimum in a sliding window of the input signal". ErodeFlat and
// DilateFlat therefore use the van Herk/Gil-Werman sliding-window
// algorithm, which costs O(1) comparisons per sample independent of the
// structuring-element length; the naive O(k) variants are retained for
// the ablation benchmark.
package morpho

import "errors"

// ErrBadSE is returned when a structuring-element length is not positive.
var ErrBadSE = errors.New("morpho: structuring element length must be >= 1")

// ErodeFlatNaive computes flat erosion (sliding minimum) with a centred
// window of length k using the direct O(n*k) algorithm. Borders use edge
// replication. Kept as the baseline for BenchmarkAblationVanHerk.
func ErodeFlatNaive(x []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]float64, n)
	half := k / 2
	for i := 0; i < n; i++ {
		lo := i - half
		hi := lo + k - 1
		m := x[clampIdx(lo, n)]
		for j := lo + 1; j <= hi; j++ {
			v := x[clampIdx(j, n)]
			if v < m {
				m = v
			}
		}
		out[i] = m
	}
	return out, nil
}

// DilateFlatNaive computes flat dilation (sliding maximum) with the
// direct O(n*k) algorithm.
func DilateFlatNaive(x []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]float64, n)
	half := k / 2
	for i := 0; i < n; i++ {
		lo := i - half
		hi := lo + k - 1
		m := x[clampIdx(lo, n)]
		for j := lo + 1; j <= hi; j++ {
			v := x[clampIdx(j, n)]
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out, nil
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ErodeFlat computes flat erosion with a centred window of length k in
// O(1) amortised comparisons per sample (monotonic-deque sliding
// minimum). Borders use edge replication, matching the naive variant
// exactly.
func ErodeFlat(x []float64, k int) ([]float64, error) {
	return slidingExtremum(x, k, true)
}

// DilateFlat computes flat dilation with a centred window of length k in
// O(1) amortised comparisons per sample.
func DilateFlat(x []float64, k int) ([]float64, error) {
	return slidingExtremum(x, k, false)
}

// slidingExtremum implements the monotonic wedge: indices whose values
// can still become the window extremum, in extremum-first order.
func slidingExtremum(x []float64, k int, min bool) ([]float64, error) {
	if k < 1 {
		return nil, ErrBadSE
	}
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	half := k / 2
	// Virtual padded signal of length n + k (edge replication); window for
	// output i covers virtual indices [i-half, i-half+k-1].
	at := func(j int) float64 { return x[clampIdx(j, n)] }
	better := func(a, b float64) bool {
		if min {
			return a <= b
		}
		return a >= b
	}
	deque := make([]int, 0, k+1)
	lo := -half // leading edge starts at window start of output 0
	// Pre-fill the first window except its last element.
	for j := lo; j < lo+k-1; j++ {
		for len(deque) > 0 && better(at(j), at(deque[len(deque)-1])) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
	}
	for i := 0; i < n; i++ {
		j := i - half + k - 1 // new trailing element entering the window
		for len(deque) > 0 && better(at(j), at(deque[len(deque)-1])) {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, j)
		// Expire indices left of the window.
		start := i - half
		for deque[0] < start {
			deque = deque[1:]
		}
		out[i] = at(deque[0])
	}
	return out, nil
}

// OpenFlat computes morphological opening (erosion then dilation) with a
// flat structuring element of length k: it removes positive peaks
// narrower than k.
func OpenFlat(x []float64, k int) ([]float64, error) {
	e, err := ErodeFlat(x, k)
	if err != nil {
		return nil, err
	}
	return DilateFlat(e, k)
}

// CloseFlat computes morphological closing (dilation then erosion): it
// fills negative pits narrower than k.
func CloseFlat(x []float64, k int) ([]float64, error) {
	d, err := DilateFlat(x, k)
	if err != nil {
		return nil, err
	}
	return ErodeFlat(d, k)
}

package morpho

// This file implements the two-stage morphological conditioning filter of
// ref [9] (Sun, Chan, Krishnan, "ECG signal conditioning by morphological
// filtering", Computers in Biology and Medicine 2002), the filtering
// strategy Section III.B of the paper describes as "a filtering technique
// based on the application of two morphological operators (erosion and
// dilation), which removes unwanted components from the input signal".
//
// Stage 1 — baseline correction: the baseline is estimated by an opening
// followed by a closing with structuring elements sized to straddle the
// characteristic-wave durations (L0 ≈ 0.2·fs suppresses QRS and P/T
// peaks, Lc = 1.5·L0 closes the remaining pits) and subtracted.
//
// Stage 2 — noise suppression: the corrected signal is filtered by the
// average of an opening and a closing with a short SE pair, which clips
// impulsive noise in both polarities while preserving wave morphology.

// FilterConfig parameterises the morphological conditioning filter.
type FilterConfig struct {
	// Fs is the sampling rate in Hz. Required.
	Fs float64
	// BaselineSE is the opening SE length for baseline estimation in
	// samples; 0 selects the ref [9] default of 0.2*Fs.
	BaselineSE int
	// NoiseSE is the short SE length for noise suppression in samples;
	// 0 selects the default of 3 (≈12 ms at 256 Hz).
	NoiseSE int
}

// WithDefaults resolves the zero-means-default fields to their
// effective values (the SE lengths the filter will actually run with),
// for callers that orchestrate the filter stages themselves.
func (c FilterConfig) WithDefaults() FilterConfig { return c.withDefaults() }

func (c *FilterConfig) withDefaults() FilterConfig {
	out := *c
	if out.BaselineSE <= 0 {
		out.BaselineSE = int(0.2*out.Fs + 0.5)
		if out.BaselineSE < 3 {
			out.BaselineSE = 3
		}
	}
	if out.NoiseSE <= 0 {
		out.NoiseSE = 3
	}
	return out
}

// BaselineEstimate returns the morphological baseline estimate of x:
// opening with SE length L0 followed by closing with 1.5*L0. Subtracting
// it removes baseline wander without distorting the QRS complex.
func BaselineEstimate(x []float64, cfg FilterConfig) ([]float64, error) {
	c := cfg.withDefaults()
	l0 := c.BaselineSE
	opened, err := OpenFlat(x, l0)
	if err != nil {
		return nil, err
	}
	return CloseFlat(opened, l0+l0/2)
}

// RemoveBaseline returns x minus its morphological baseline estimate.
func RemoveBaseline(x []float64, cfg FilterConfig) ([]float64, error) {
	base, err := BaselineEstimate(x, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - base[i]
	}
	return out, nil
}

// SuppressNoise applies the open/close averaging stage of ref [9]: the
// result is (opening + closing)/2 with a short flat SE, clipping
// impulsive artifacts of both polarities.
func SuppressNoise(x []float64, cfg FilterConfig) ([]float64, error) {
	c := cfg.withDefaults()
	o, err := OpenFlat(x, c.NoiseSE)
	if err != nil {
		return nil, err
	}
	cl, err := CloseFlat(x, c.NoiseSE)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = 0.5 * (o[i] + cl[i])
	}
	return out, nil
}

// Filter runs the full two-stage conditioning filter (baseline correction
// then noise suppression). This is the "3L-MF" kernel of Figure 7 when
// applied to each of the three leads.
func Filter(x []float64, cfg FilterConfig) ([]float64, error) {
	out := make([]float64, len(x))
	var s Scratch
	if err := FilterInto(x, cfg, out, &s); err != nil {
		return nil, err
	}
	return out, nil
}

// FilterLeads applies Filter independently to every lead — the 3L-MF
// multi-lead workload. Lead lengths may differ.
func FilterLeads(leads [][]float64, cfg FilterConfig) ([][]float64, error) {
	var s Scratch
	return FilterLeadsInto(leads, cfg, nil, &s)
}

// BaselineEstimateInto is BaselineEstimate writing into out (len(x)),
// drawing intermediates from s. out must be caller-owned and must not
// alias x.
func BaselineEstimateInto(x []float64, cfg FilterConfig, out []float64, s *Scratch) error {
	c := cfg.withDefaults()
	l0 := c.BaselineSE
	opened := s.buffer(1, len(x))
	if err := OpenFlatInto(x, l0, opened, s); err != nil {
		return err
	}
	return CloseFlatInto(opened, l0+l0/2, out, s)
}

// RemoveBaselineInto is RemoveBaseline writing into out (len(x)). out
// may alias x (in-place correction).
func RemoveBaselineInto(x []float64, cfg FilterConfig, out []float64, s *Scratch) error {
	base := s.buffer(2, len(x))
	if err := BaselineEstimateInto(x, cfg, base, s); err != nil {
		return err
	}
	for i := range x {
		out[i] = x[i] - base[i]
	}
	return nil
}

// SuppressNoiseInto is SuppressNoise writing into out (len(x)). out may
// alias x.
func SuppressNoiseInto(x []float64, cfg FilterConfig, out []float64, s *Scratch) error {
	c := cfg.withDefaults()
	o := s.buffer(1, len(x))
	if err := OpenFlatInto(x, c.NoiseSE, o, s); err != nil {
		return err
	}
	cl := s.buffer(2, len(x))
	if err := CloseFlatInto(x, c.NoiseSE, cl, s); err != nil {
		return err
	}
	for i := range x {
		out[i] = 0.5 * (o[i] + cl[i])
	}
	return nil
}

// FilterInto is Filter writing into out (len(x)), allocation-free with a
// warm scratch. out may alias x.
func FilterInto(x []float64, cfg FilterConfig, out []float64, s *Scratch) error {
	if len(out) != len(x) {
		return ErrBadSE
	}
	corrected := s.buffer(3, len(x))
	if err := RemoveBaselineInto(x, cfg, corrected, s); err != nil {
		return err
	}
	return SuppressNoiseInto(corrected, cfg, out, s)
}

// FilterLeadsInto is FilterLeads reusing out's backing storage when its
// capacity suffices. It returns the (possibly regrown) lead set.
func FilterLeadsInto(leads [][]float64, cfg FilterConfig, out [][]float64, s *Scratch) ([][]float64, error) {
	if cap(out) < len(leads) {
		grown := make([][]float64, len(leads))
		copy(grown, out)
		out = grown
	}
	out = out[:len(leads)]
	for i, l := range leads {
		if cap(out[i]) < len(l) {
			out[i] = make([]float64, len(l))
		}
		out[i] = out[i][:len(l)]
		if err := FilterInto(l, cfg, out[i], s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

module wbsn

go 1.22

// Command hrvmon runs the heart-rate-variability analysis behind the
// paper's sleep/fatigue-monitoring applications: it delineates a record
// (synthetic or external CSV), slides an HRV window over the RR series
// and prints time/frequency metrics plus the coarse autonomic sleep
// stage per window.
//
// Usage:
//
//	hrvmon -dur 300 -hr 60                    # synthetic record
//	hrvmon -in rec.csv                        # external record
package main

import (
	"flag"
	"fmt"
	"os"

	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/hrv"
)

func main() {
	var (
		in     = flag.String("in", "", "signal CSV to analyse instead of a synthetic record")
		dur    = flag.Float64("dur", 300, "synthetic record duration in seconds")
		hr     = flag.Float64("hr", 64, "synthetic mean heart rate (bpm)")
		rsa    = flag.Float64("rsa", 0.04, "synthetic respiratory sinus arrhythmia depth")
		mayer  = flag.Float64("mayer", 0.03, "synthetic Mayer-wave depth")
		window = flag.Int("window", 64, "HRV window in beats")
		hop    = flag.Int("hop", 32, "window hop in beats")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	var rec *ecg.Record
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("open %s: %v", *in, err)
		}
		rec, err = ecg.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("read %s: %v", *in, err)
		}
	} else {
		rec = ecg.Generate(ecg.Config{
			Seed: *seed, Duration: *dur,
			Rhythm: ecg.RhythmConfig{MeanHR: *hr, HRVRSA: *rsa, HRVMayer: *mayer},
		})
	}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: rec.Fs})
	if err != nil {
		fatalf("%v", err)
	}
	beats, err := del.Delineate(dsp.CombineRMS(rec.Leads))
	if err != nil {
		fatalf("delineate: %v", err)
	}
	if len(beats) < *window {
		fatalf("only %d beats delineated; need at least %d", len(beats), *window)
	}
	rr := make([]float64, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		rr = append(rr, float64(beats[i].R-beats[i-1].R)/rec.Fs)
	}
	fmt.Printf("%d beats over %.0f s; %d-beat windows, hop %d\n",
		len(beats), rec.Duration(), *window, *hop)
	fmt.Printf("%8s %8s %10s %8s %8s %8s %8s  %s\n",
		"window", "HR(bpm)", "SDNN(ms)", "RMSSD", "pNN50", "LF/HF", "HF(ms2)", "stage")
	ws := hrv.SlidingWindows(rr, *window, *hop)
	for i, m := range ws {
		fmt.Printf("%8d %8.1f %10.1f %8.1f %8.2f %8.2f %8.1f  %s\n",
			i, m.MeanHR, m.SDNN*1000, m.RMSSD*1000, m.PNN50, m.LFHF, m.HF*1e6,
			hrv.ClassifyStage(m))
	}
	if len(ws) == 0 {
		fatalf("no complete HRV windows")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hrvmon: "+format+"\n", args...)
	os.Exit(1)
}

// Command wbsn-gateway runs the networked reconstruction gateway: a TCP
// server that ingests link-encoded CS windows from wearable streams,
// decodes them through the shared gateway engine (one session actor per
// stream, bounded backpressure, panic isolation), and answers each
// completed record with its reconstruction digest.
//
// The server and its clients must share the sensing-matrix seed and the
// solver settings — the same contract a deployed firmware image has
// with its base station. wbsn-loadgen derives its configuration from
// the same flags, so a matched pair is:
//
//	wbsn-gateway -addr :9700 -seed 42 &
//	wbsn-loadgen -addr 127.0.0.1:9700 -seed 42 -streams 100 -verify
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, every
// frame already accepted into a session inbox is flushed through the
// decode engine, then the process exits. -drain-timeout bounds the
// wait.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wbsn/internal/netgw"
	"wbsn/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9700", "TCP listen address")
		seed         = flag.Int64("seed", 42, "sensing-matrix seed (must match the clients)")
		csRatio      = flag.Float64("cs-ratio", 60, "compressed-sensing ratio in percent")
		solverIters  = flag.Int("solver-iters", 0, "FISTA iteration budget (0 keeps the library default)")
		solverTol    = flag.Float64("solver-tol", 0, "FISTA convergence tolerance (>0 enables early exit)")
		warm         = flag.Bool("warm", false, "warm-start the per-stream solver across windows")
		workers      = flag.Int("workers", 0, "decode engine workers (0 = GOMAXPROCS, negative = inline)")
		batch        = flag.Int("batch", 0, "windows per engine dispatch: >1 batches queued windows through one structure-of-arrays solver pass (0/1 = sequential)")
		batchWait    = flag.Duration("batch-wait", 0, "how long a worker holding a partial batch waits for more windows (0 = dispatch greedily)")
		inbox        = flag.Int("inbox", 0, "per-session inbox depth (0 = default 32)")
		ackEvery     = flag.Int("ack-every", 0, "cumulative-ack cadence in windows (0 = default 4)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "per-frame read deadline (0 = default 30s)")
		sessionTTL   = flag.Duration("session-ttl", 0, "detached-session retention (0 = default 2m)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
		telAddr      = flag.String("telemetry", "", "serve live metrics and the control plane on this address (/metrics, /sessions, /traces, /healthz, /buildinfo, /debug/pprof)")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "wbsn-gateway: %s\n", telemetry.ReadBuild())

	_, gcfg, err := netgw.GatewayConfigFor(*seed, *csRatio, *solverIters, *solverTol, *warm)
	if err != nil {
		fatalf("configuration: %v", err)
	}
	cfg := netgw.ServerConfig{
		Addr:            *addr,
		Gateway:         gcfg,
		EngineWorkers:   *workers,
		EngineBatch:     *batch,
		EngineBatchWait: *batchWait,
		InboxDepth:      *inbox,
		AckEvery:        *ackEvery,
		IdleTimeout:     *idleTimeout,
		SessionTTL:      *sessionTTL,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wbsn-gateway: "+format+"\n", args...)
		},
	}
	var (
		reg *telemetry.Registry
		set *telemetry.Set
	)
	if *telAddr != "" {
		reg = telemetry.NewRegistry()
		set = telemetry.NewSet(reg)
		cfg.Telemetry = set
	}

	srv, err := netgw.Serve(cfg)
	if err != nil {
		fatalf("serve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wbsn-gateway: listening on %s (seed %d, cs-ratio %.0f%%, warm %v)\n",
		srv.Addr(), *seed, *csRatio, *warm)

	if *telAddr != "" {
		// The gateway server doubles as the control plane behind
		// /sessions and /sessions/{id}/evict.
		tsrv, err := telemetry.ServeOpts(*telAddr, reg, telemetry.HTTPOptions{
			Control: srv,
			Trace:   set.Trace,
		})
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wbsn-gateway: telemetry on http://%s/metrics (control plane: /sessions, /traces, /healthz)\n", tsrv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			tsrv.Shutdown(ctx) //nolint:errcheck — teardown is bounded either way
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "wbsn-gateway: %v — draining (bound %s)\n", got, *drainTimeout)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "wbsn-gateway: drain incomplete after %s: %v\n", time.Since(start).Round(time.Millisecond), err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wbsn-gateway: drained in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbsn-gateway: "+format+"\n", args...)
	os.Exit(1)
}

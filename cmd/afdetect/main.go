// Command afdetect reproduces the paper's atrial-fibrillation detection
// result (Section V, "Text-2"): the embedded fuzzy AF detector is run
// over a balanced set of synthetic NSR (including ectopic) and AF
// records, and the record-level sensitivity and specificity are compared
// against the paper's 96% / 93%.
//
// Usage:
//
//	afdetect -records 20 -dur 120 -ectopy
package main

import (
	"flag"
	"fmt"
	"os"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
)

func main() {
	var (
		records = flag.Int("records", 20, "records per class (NSR and AF)")
		dur     = flag.Float64("dur", 120, "record duration in seconds")
		ectopy  = flag.Bool("ectopy", true, "inject PVC/APB ectopy into a third of the NSR records")
		seed    = flag.Int64("seed", 3, "generator seed")
	)
	flag.Parse()
	node, err := core.NewNode(core.Config{Mode: core.ModeAFAlarm})
	if err != nil {
		fatalf("%v", err)
	}
	var tp, fn, fp, tn int
	var windowAF, windowTotal int
	for i := 0; i < *records; i++ {
		// NSR record (ectopic every third when enabled).
		cfgN := ecg.Config{Seed: *seed + int64(i), Duration: *dur, Noise: ecg.NoiseConfig{EMG: 0.02}}
		if *ectopy && i%3 == 0 {
			cfgN.Rhythm.PVCRate = 0.08
			cfgN.Rhythm.APBRate = 0.05
		}
		resN, err := node.Process(ecg.Generate(cfgN))
		if err != nil {
			fatalf("process NSR: %v", err)
		}
		if resN.AFAlarm {
			fp++
		} else {
			tn++
		}
		// AF record.
		cfgA := ecg.Config{
			Seed: *seed + 1000 + int64(i), Duration: *dur,
			Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF},
			Noise:  ecg.NoiseConfig{EMG: 0.02},
		}
		resA, err := node.Process(ecg.Generate(cfgA))
		if err != nil {
			fatalf("process AF: %v", err)
		}
		if resA.AFAlarm {
			tp++
		} else {
			fn++
		}
		for _, d := range resA.AFDecisions {
			windowTotal++
			if d.AF {
				windowAF++
			}
		}
	}
	se := 100 * float64(tp) / float64(tp+fn)
	sp := 100 * float64(tn) / float64(tn+fp)
	fmt.Printf("== AF detection over %d NSR + %d AF records (%.0f s each) ==\n",
		*records, *records, *dur)
	fmt.Printf("record-level: TP=%d FN=%d FP=%d TN=%d\n", tp, fn, fp, tn)
	fmt.Printf("sensitivity = %.1f%% (paper: 96%%)\n", se)
	fmt.Printf("specificity = %.1f%% (paper: 93%%)\n", sp)
	if windowTotal > 0 {
		fmt.Printf("window-level AF vote rate inside AF records: %.1f%%\n",
			100*float64(windowAF)/float64(windowTotal))
	}
	if se >= 96 && sp >= 93 {
		fmt.Println("shape check PASS: at or above the paper's operating point")
	} else {
		fmt.Println("shape check FAIL")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "afdetect: "+format+"\n", args...)
	os.Exit(1)
}

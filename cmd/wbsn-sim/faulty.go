package main

// The -faulty sweep: run the CS node -> ARQ link -> gateway chain over
// progressively worse Gilbert–Elliott channels and tabulate what the
// paper's robustness layers buy — delivery ratio after retransmission,
// the radio-energy overhead the retries cost, and the QRS sensitivity
// the remote delineator retains over the gap-padded reconstruction.

import (
	"fmt"

	"wbsn/internal/core"
	"wbsn/internal/delineation"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
	"wbsn/internal/link"
)

// faultyScenario is one row of the sweep.
type faultyScenario struct {
	name string
	ch   link.ChannelConfig
}

func faultyScenarios(seed int64) []faultyScenario {
	return []faultyScenario{
		{"clean", link.ChannelConfig{PGoodToBad: 0, PBadToGood: 1, Seed: seed}},
		{"light", link.ChannelConfig{
			PGoodToBad: 0.03, PBadToGood: 0.4, LossGood: 0.01, LossBad: 0.3,
			BERBad: 1e-6, Seed: seed}},
		{"bursty", link.ChannelConfig{
			PGoodToBad: 0.08, PBadToGood: 0.25, LossGood: 0.01, LossBad: 0.4,
			BERBad: 1e-6, PReorder: 0.02, Seed: seed}},
		{"harsh", link.ChannelConfig{
			PGoodToBad: 0.1, PBadToGood: 0.15, LossGood: 0.02, LossBad: 0.8,
			BERBad: 1e-6, PReorder: 0.02, Seed: seed}},
		{"hostile", link.ChannelConfig{
			PGoodToBad: 0.3, PBadToGood: 0.08, LossGood: 0.05, LossBad: 0.95,
			BERBad: 1e-6, PReorder: 0.02, Seed: seed}},
	}
}

func runFaultySweep(seed int64) error {
	rec := ecg.Generate(ecg.Config{Seed: 33, Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.01}})
	fmt.Println("== Lossy-link sweep: CS node -> ARQ -> gateway, 30 s record ==")
	fmt.Printf("%-8s %8s %10s %8s %8s %8s %8s\n",
		"channel", "loss", "delivered", "retx", "retx-E", "QRS Se", "QRS PPV")
	for _, sc := range faultyScenarios(seed) {
		node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: seed})
		if err != nil {
			return err
		}
		stream, err := node.NewStream()
		if err != nil {
			return err
		}
		rx, err := gateway.NewReceiver(gateway.MatchNode(node.Config()))
		if err != nil {
			return err
		}
		ch, err := link.NewChannel(sc.ch)
		if err != nil {
			return err
		}
		lk, err := link.NewLink(link.ARQConfig{PAckLoss: 0.05, Seed: seed}, ch, rx)
		if err != nil {
			return err
		}
		events, err := stream.PushBlock(rec.Leads)
		if err != nil {
			return err
		}
		for _, e := range events {
			if e.Kind != core.EventPacket || e.Measurements == nil {
				continue
			}
			if _, err := lk.SendMeasurements(e.At, e.Measurements); err != nil {
				return err
			}
		}
		if err := lk.Close(); err != nil {
			return err
		}
		report := lk.Report()
		dets, err := rx.Delineate()
		if err != nil {
			return err
		}
		rep := delineation.Evaluate(rec, dets, delineation.DefaultTolerances())
		overhead := 0.0
		if report.IdealEnergyJ > 0 {
			overhead = report.RetransmitEnergyJ() / report.IdealEnergyJ
		}
		fmt.Printf("%-8s %7.1f%% %6d/%-3d %8d %7.0f%% %8.3f %8.3f\n",
			sc.name, 100*sc.ch.StationaryLoss(),
			report.Delivered, report.Packets, report.Retransmissions,
			100*overhead, rep.R.Se(), rep.R.PPV())
	}
	fmt.Println("\nloss: stationary frame-loss of the Gilbert–Elliott channel")
	fmt.Println("retx-E: radio energy spent on retransmissions, relative to a lossless link")
	return nil
}

// Command wbsn-sim reproduces Figure 7: it simulates the three embedded
// cardiac workloads (3L-MF filtering, 3L-MMD delineation, RP-CLASS
// classification) on the synchronized multi-core platform of ref [18]
// and on an equivalent single-core device, and prints the per-component
// average-power decomposition plus the multi-core reduction.
//
// Usage:
//
//	wbsn-sim             # Figure 7 table
//	wbsn-sim -ablation   # additionally ablate the broadcast interconnect
//	wbsn-sim -faulty     # sweep the lossy-link scenario instead
//	wbsn-sim -throughput # sweep the gateway engine across worker counts
//	wbsn-sim -fleet      # sweep the sharded multi-patient fleet engine
//	wbsn-sim -soak       # long-horizon hierarchical-cluster endurance run
//
// Any run may add -telemetry addr to serve live metrics (/metrics,
// /debug/vars, /debug/pprof) plus a periodic stderr summary; the fleet
// sweep feeds the full per-stage pipeline instrumentation.
package main

import (
	"flag"
	"fmt"
	"os"

	"wbsn/internal/telemetry"
	"wbsn/internal/wbsn"
)

func main() {
	var (
		ablation   = flag.Bool("ablation", false, "also run with the broadcast interconnect disabled")
		faulty     = flag.Bool("faulty", false, "sweep the node->gateway chain across channel loss rates")
		throughput = flag.Bool("throughput", false, "sweep the gateway reconstruction engine across worker counts")
		fleetSweep = flag.Bool("fleet", false, "sweep the sharded multi-patient fleet across patients x shards")
		seed       = flag.Int64("seed", 1, "branch-outcome seed")
		solverTol  = flag.Float64("solver-tol", 0, "FISTA convergence tolerance: >0 enables early exit, adaptive restart and warm-started reconstruction in the fleet/throughput sweeps (0 keeps the fixed-budget solver)")
		engBatch   = flag.Int("engine-batch", 0, "windows per gateway-engine dispatch in the fleet/throughput sweeps: >1 batches queued windows through one structure-of-arrays solver pass (0/1 = sequential)")
		telAddr    = flag.String("telemetry", "", "serve live metrics on this address (/metrics JSON, /debug/vars, /debug/pprof)")
		telLinger  = flag.Duration("telemetry-linger", 0, "keep the telemetry endpoint up this long after the run (for external scrapers)")

		soak = flag.Bool("soak", false, "run the long-horizon hierarchical-fleet soak (leak, saturation, drift and budget watcher)")
		o    soakOpts
	)
	flag.IntVar(&o.patients, "soak-patients", 10000, "soak population size")
	flag.IntVar(&o.rounds, "soak-rounds", 5, "soak scheduling rounds (each simulates soak-session-s per patient)")
	flag.IntVar(&o.groups, "soak-groups", 4, "cluster shard-groups")
	flag.IntVar(&o.groupShards, "soak-group-shards", 0, "worker shards per group (0 = GOMAXPROCS)")
	flag.Float64Var(&o.sessionS, "soak-session-s", 2, "simulated seconds per patient per round")
	flag.IntVar(&o.budget, "soak-budget", 8192, "enforced bytes/patient cap (0 disables)")
	flag.BoolVar(&o.carryWarm, "soak-carry-warm", true, "carry warm-start solver coefficients across rounds (compact float32 tier)")
	flag.BoolVar(&o.checkpoint, "soak-checkpoint", true, "checkpoint mid-run, restore into a fresh cluster and verify digest identity")
	flag.StringVar(&o.ckptFile, "soak-checkpoint-file", "", "also persist the mid-run checkpoint to this path")
	flag.IntVar(&o.verifyEvery, "soak-verify-every", 1, "replay-verify one patient's digest every N rounds (0 disables)")
	flag.Float64Var(&o.heapGrowthMB, "soak-heap-growth-mb", 64, "max allowed heap growth between round 0 and the final round")
	flag.IntVar(&o.solverIters, "soak-iters", 0, "FISTA iteration cap for the soak (0 = gateway default; CI uses a reduced budget)")
	flag.Parse()
	var tel *telemetry.Set
	if *telAddr != "" {
		set, _, stop, err := startTelemetry(*telAddr, *telLinger)
		if err != nil {
			fatalf("telemetry: %v", err)
		}
		defer stop()
		tel = set
	}
	if *soak {
		o.solverTol = *solverTol
		o.seed = *seed
		if err := runSoak(o, tel); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *fleetSweep {
		if err := runFleetSweep(*seed, tel, *solverTol, *engBatch); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *faulty {
		if err := runFaultySweep(*seed); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *throughput {
		if err := runThroughputSweep(*seed, *solverTol, *engBatch); err != nil {
			fatalf("%v", err)
		}
		return
	}
	em := wbsn.DefaultEnergy()
	results, err := wbsn.RunFigure7(em, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println("== Figure 7: average power, synchronized multi-core (MC) vs single-core (SC) ==")
	fmt.Printf("%-10s %-4s %9s %8s %8s %8s %8s %8s %9s %7s\n",
		"app", "cfg", "f(kHz)", "V", "core", "imem", "dmem", "intc+lk", "total(µW)", "merge")
	maxRed := 0.0
	for _, r := range results {
		p := func(tag string, b wbsn.PowerBreakdown, merge float64) {
			fmt.Printf("%-10s %-4s %9.0f %8.2f %8.3f %8.3f %8.3f %8.3f %9.3f %7.2f\n",
				r.App, tag, b.Freq/1e3, b.Voltage,
				b.CoreW*1e6, b.IMemW*1e6, b.DMemW*1e6, (b.IntcW+b.LeakW)*1e6,
				b.TotalW()*1e6, merge)
		}
		p("SC", r.SC, r.SCStats.MergeRatio())
		p("MC", r.MC, r.MCStats.MergeRatio())
		fmt.Printf("%-10s reduction: %.1f%%\n", r.App, 100*r.Reduction)
		if r.Reduction > maxRed {
			maxRed = r.Reduction
		}
	}
	fmt.Printf("\nmax reduction: %.1f%% (paper: up to 40%%)\n", 100*maxRed)

	// The Figure 3 compound mapping: the whole pipeline on 8 cores.
	comp, err := wbsn.RunCompound(em, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\n== Figure 3 compound mapping: full pipeline on 8 cores ==\n")
	fmt.Printf("SC %6.0f kHz @ %.2f V -> %6.3f µW | MC %6.0f kHz @ %.2f V -> %6.3f µW | reduction %.1f%% (merge %.2fx)\n",
		comp.SC.Freq/1e3, comp.SC.Voltage, comp.SC.TotalW()*1e6,
		comp.MC.Freq/1e3, comp.MC.Voltage, comp.MC.TotalW()*1e6,
		100*comp.Reduction, comp.MCStats.MergeRatio())

	if *ablation {
		fmt.Println("\n== Ablation: broadcast interconnect disabled on the MC platform ==")
		for _, app := range wbsn.Figure7Apps() {
			mcProg, _, err := app.Programs()
			if err != nil {
				fatalf("%v", err)
			}
			progs := make([]*wbsn.Program, app.Cores)
			for i := range progs {
				progs[i] = mcProg
			}
			run := func(broadcast bool) wbsn.Stats {
				m, err := wbsn.NewMachine(wbsn.MachineConfig{
					Cores: app.Cores, IMemBanks: 2, DMemBanks: app.Cores,
					Broadcast: broadcast, Seed: *seed,
				}, progs)
				if err != nil {
					fatalf("%v", err)
				}
				return m.Run(50e6)
			}
			on, off := run(true), run(false)
			fmt.Printf("%-10s broadcast on: %7d cycles, %7d imem accesses | off: %7d cycles, %7d accesses (%.2fx cycles)\n",
				app.Name, on.Cycles, on.FetchAccesses, off.Cycles, off.FetchAccesses,
				float64(off.Cycles)/float64(on.Cycles))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbsn-sim: "+format+"\n", args...)
	os.Exit(1)
}

package main

// The -soak mode is the long-horizon endurance harness behind the
// ROADMAP's "million-patient soak": a hierarchical fleet.Cluster runs a
// large population for many scheduling rounds while a watcher reads the
// telemetry registry — the same snapshot /metrics serves — and fails
// loudly on any of the leak signals ROADMAP names: heap growth across
// rounds, saturated histograms, digest drift (a from-scratch replay of
// one patient disagreeing with the live cold tier), and the per-patient
// memory budget. Mid-run it exercises the checkpoint/restore path and
// proves the resumed population lands on the same digest fold as the
// run that never stopped.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"wbsn/internal/fleet"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

type soakOpts struct {
	patients     int
	rounds       int
	groups       int
	groupShards  int
	sessionS     float64
	budget       int
	carryWarm    bool
	checkpoint   bool
	ckptFile     string
	verifyEvery  int
	heapGrowthMB float64
	solverTol    float64
	solverIters  int
	seed         int64
}

func (o soakOpts) clusterConfig(tel *telemetry.Set) fleet.ClusterConfig {
	return fleet.ClusterConfig{
		Fleet: fleet.Config{
			Patients:    o.patients,
			Seed:        o.seed,
			SolverTol:   o.solverTol,
			SolverIters: o.solverIters,
			WarmStart:   o.carryWarm || o.solverTol > 0,
			Channel: link.ChannelConfig{
				PGoodToBad: 0.05,
				PBadToGood: 0.25,
				LossGood:   0.02,
				LossBad:    0.45,
			},
			Telemetry: tel,
		},
		Groups:                o.groups,
		GroupShards:           o.groupShards,
		Rounds:                o.rounds,
		SessionS:              o.sessionS,
		CarryWarm:             o.carryWarm,
		BudgetBytesPerPatient: o.budget,
	}
}

// rssMB reads the process resident set from /proc (0 when unavailable
// — RSS is reported for the operator; the enforced signal is the heap
// gauge, which is portable and GC-stable).
func rssMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				kb, _ := strconv.ParseFloat(f[0], 64)
				return kb / 1024
			}
		}
	}
	return 0
}

func runSoak(o soakOpts, tel *telemetry.Set) error {
	if tel == nil {
		// Headless soak: the watcher still goes through a real registry
		// snapshot, exactly what -telemetry would serve.
		tel = telemetry.NewSet(telemetry.NewRegistry())
	}
	reg := tel.Registry

	// heapInuse reads the runtime gauge through a registry snapshot
	// (collectors refresh it there), after a GC so slack pages don't
	// masquerade as growth.
	heapInuse := func() uint64 {
		runtime.GC()
		return uint64(reg.Snapshot().Gauges["runtime.heap_inuse_bytes"].Value)
	}
	heapBase := heapInuse()

	cfg := o.clusterConfig(tel)
	cl, err := fleet.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	eff := cl.Config()
	mem := cl.Mem()
	fmt.Printf("== Soak: %d patients × %d rounds × %.1f s (%d groups × %d shards, carry-warm=%v, budget %d B/patient) ==\n",
		o.patients, eff.Rounds, eff.SessionS, eff.Groups, eff.GroupShards, o.carryWarm, o.budget)
	fmt.Printf("plan: cold %d B + warm %d B = %d B/patient, %d pooled rigs\n",
		mem.ColdBytesPerPatient, mem.WarmBytesPerPatient, mem.PlannedBytesPerPatient, mem.Rigs)

	var failures []string
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		failures = append(failures, msg)
		fmt.Printf("soak FAIL signal: %s\n", msg)
	}

	var ckpt bytes.Buffer
	ckptAtRound := -1
	var heapAfterFirst uint64
	fmt.Printf("%-6s %9s %9s %18s %9s %8s %5s\n",
		"round", "wall(s)", "RTF", "digest fold", "heap(MB)", "rss(MB)", "gor")
	for r := 0; r < eff.Rounds; r++ {
		rr, err := cl.RunRound()
		if err != nil {
			return err
		}

		// Watcher pass: one registry snapshot per round, the same bytes
		// /metrics would serve.
		snap := reg.Snapshot()
		heapMB := float64(snap.Gauges["runtime.heap_inuse_bytes"].Value) / (1 << 20)
		gor := snap.Gauges["runtime.goroutines"].Value
		for name, h := range snap.Histograms {
			if h.Saturated > 0 {
				fail("round %d: histogram %s saturated (%d observations in the overflow bucket)",
					r, name, h.Saturated)
			}
		}
		fmt.Printf("%-6d %9.2f %8.0fx %018x %9.1f %8.1f %5d\n",
			r, rr.WallSeconds, rr.RealTimeFactor, rr.DigestFold, heapMB, rssMB(), gor)

		if o.verifyEvery > 0 && (r+1)%o.verifyEvery == 0 {
			p := (r * 7919) % o.patients // rotating prime stride covers the population
			if err := cl.VerifyPatient(p); err != nil {
				fail("round %d: %v", r, err)
			} else {
				fmt.Printf("       drift check: patient %d replayed %d round(s), digest matches\n", p, r+1)
			}
		}
		if o.checkpoint && ckptAtRound < 0 && r == (eff.Rounds-1)/2 && r < eff.Rounds-1 {
			if err := cl.WriteCheckpoint(&ckpt); err != nil {
				return err
			}
			ckptAtRound = cl.RoundsDone()
			fmt.Printf("       checkpoint: %.1f MB after round %d (FNV-sealed)\n",
				float64(ckpt.Len())/(1<<20), r)
			if o.ckptFile != "" {
				if err := os.WriteFile(o.ckptFile, ckpt.Bytes(), 0o644); err != nil {
					return err
				}
			}
		}
		if r == 0 {
			heapAfterFirst = heapInuse()
		}
	}
	final := cl.Report()

	// Checkpoint/restore signal first: resume the mid-run file in a
	// fresh cluster, replay the remaining rounds, and demand the same
	// fold. Runs before the memory signals so its transient population
	// (a second cluster plus the serialized file) can be released and
	// not distort the residency sample.
	if ckptAtRound >= 0 {
		restored, err := fleet.NewCluster(cfg)
		if err != nil {
			return err
		}
		rerr := restored.ReadCheckpoint(bytes.NewReader(ckpt.Bytes()))
		var rrep *fleet.ClusterReport
		if rerr == nil {
			rrep, rerr = restored.Run()
		}
		restored.Close()
		if rerr != nil {
			return rerr
		}
		if rrep.DigestFold != final.DigestFold {
			fail("restore divergence: resumed fold %016x, live fold %016x", rrep.DigestFold, final.DigestFold)
		} else {
			fmt.Printf("restore: resumed at round %d, replayed %d round(s), digest fold matches live run\n",
				ckptAtRound, eff.Rounds-ckptAtRound)
		}
		ckpt = bytes.Buffer{} // release the in-memory copy before sampling
	}

	// Degenerate-run signal: a soak whose pipeline never emitted a
	// single event exercised nothing — the classic cause is a session
	// shorter than one CS window, which silently produces zero packets
	// and a meaninglessly fast "PASS".
	if final.Events == 0 {
		fail("no pipeline events across %d patients × %d rounds (session %.1f s too short for a CS window?)",
			o.patients, eff.Rounds, eff.SessionS)
	}

	// Leak signal: steady-state heap must not grow across rounds (the
	// first round is excluded — it fills the pooled rigs and solver
	// scratch, which is one-time warm-up, not a leak).
	heapEnd := heapInuse()
	if growth := (float64(heapEnd) - float64(heapAfterFirst)) / (1 << 20); growth > o.heapGrowthMB {
		fail("heap grew %.1f MB between round 0 and round %d (limit %.1f MB)",
			growth, eff.Rounds-1, o.heapGrowthMB)
	} else {
		fmt.Printf("heap: %+.1f MB across %d rounds (limit %.1f MB)\n",
			growth, eff.Rounds, o.heapGrowthMB)
	}

	// Budget signal: population residency, isolated from the process
	// baseline sampled before the cluster existed.
	if o.budget > 0 {
		perPatient := (float64(heapEnd) - float64(heapBase)) / float64(o.patients)
		if perPatient > float64(o.budget) {
			fail("observed %.0f B/patient exceeds budget %d", perPatient, o.budget)
		} else {
			fmt.Printf("observed: %.0f B/patient (budget %d, planned %d)\n",
				perPatient, o.budget, mem.PlannedBytesPerPatient)
		}
	}

	fmt.Printf("totals: %.0f simulated s in %.1f s wall (RTF %.0fx ≈ patients/core), %d events, delivery %.3f, Se %.3f, PPV %.3f\n",
		final.SimSeconds, final.WallSeconds, final.RealTimeFactor,
		final.Events, final.MeanDelivery, final.MeanSe, final.MeanPPV)
	if len(failures) > 0 {
		return fmt.Errorf("soak FAILED with %d signal(s): %s", len(failures), strings.Join(failures, "; "))
	}
	fmt.Println("soak PASS: no leaks, no saturation, no drift, budget held, restore bit-identical")
	return nil
}

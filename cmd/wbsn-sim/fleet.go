package main

// The -fleet sweep scales the whole chain to a patient population: the
// sharded fleet engine simulates every patient's node, lossy link and
// gateway reconstruction, sweeping patients x shards. For each
// population size the serial (1-shard) run is the reference and every
// other shard count must reproduce each patient's digest bit for bit —
// the fleet's scheduling guarantee. The table reports the real-time
// factor (simulated seconds per wall second), i.e. how many live
// patients this host could serve, plus the clinical and radio health of
// the population.

import (
	"fmt"
	"runtime"

	"wbsn/internal/fleet"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

func runFleetSweep(seed int64, tel *telemetry.Set, solverTol float64, engineBatch int) error {
	maxShards := runtime.GOMAXPROCS(0)
	// Exercise the multi-shard path (and its bit-identity) even on a
	// single-core host, where the speedup honestly reports ~1x.
	if maxShards < 4 {
		maxShards = 4
	}
	shardSet := []int{1}
	for s := 2; s <= maxShards; s *= 2 {
		shardSet = append(shardSet, s)
	}
	if last := shardSet[len(shardSet)-1]; last != maxShards {
		shardSet = append(shardSet, maxShards)
	}

	const durationS = 8.0
	channel := link.ChannelConfig{
		PGoodToBad: 0.05,
		PBadToGood: 0.25,
		LossGood:   0.02,
		LossBad:    0.45,
	}
	solver := "fixed-budget solver"
	if solverTol > 0 {
		solver = fmt.Sprintf("warm-started solver, tol %g", solverTol)
	}
	fmt.Printf("== Fleet: sharded multi-patient simulation (GOMAXPROCS=%d, %.0f s/patient, bursty channel, %s) ==\n",
		runtime.GOMAXPROCS(0), durationS, solver)
	fmt.Printf("%-9s %-7s %9s %8s %7s %7s %9s %10s %8s\n",
		"patients", "shards", "wall(ms)", "RTF", "Se", "PPV", "delivery", "radio(mJ)", "speedup")

	planDesc := ""
	for _, patients := range []int{4, 8, 16} {
		var serial *fleet.Result
		for _, shards := range shardSet {
			if shards > patients {
				continue
			}
			res, err := fleet.Run(fleet.Config{
				Patients:    patients,
				Shards:      shards,
				DurationS:   durationS,
				Seed:        seed,
				Channel:     channel,
				SolverTol:   solverTol,
				WarmStart:   solverTol > 0,
				EngineBatch: engineBatch,
				Telemetry:   tel,
			})
			if err != nil {
				return err
			}
			speedup := 1.0
			if serial == nil {
				serial = res
				planDesc = res.PlanDescription
			} else {
				speedup = serial.WallSeconds / res.WallSeconds
				for p := range serial.Patients {
					if res.Patients[p].Digest != serial.Patients[p].Digest {
						return fmt.Errorf("patients=%d shards=%d: patient %d diverged from serial execution",
							patients, shards, p)
					}
				}
			}
			fmt.Printf("%-9d %-7d %9.1f %8.1f %7.3f %7.3f %9.3f %10.3f %7.2fx\n",
				patients, res.Shards, res.WallSeconds*1e3, res.RealTimeFactor,
				res.MeanSe, res.MeanPPV, res.MeanDelivery, res.RadioEnergyJ*1e3, speedup)
		}
		fmt.Println()
	}
	fmt.Printf("compiled node plan (every rig): %s\n", planDesc)
	fmt.Println("all shard counts produced bit-identical per-patient event streams")
	return nil
}

package main

// The -telemetry flag turns the simulator into an inspectable process:
// an HTTP listener serves the live metric registry (/metrics as JSON,
// /debug/vars for expvar consumers, /debug/pprof for the profiler)
// while a periodic summary line on stderr keeps headless runs
// observable. Telemetry is pure observation — every sweep's digests are
// bit-identical with or without it.

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"wbsn/internal/telemetry"
)

// summaryKeys is the stderr heartbeat: enough to watch a fleet run's
// progress and radio health without scraping the endpoint.
var summaryKeys = []string{
	"fleet.patients.done",
	"node.chunks",
	"link.retransmissions",
	"gateway.queue.depth",
	"link.radio.energy_j",
}

// startTelemetry builds the full metric family, serves the inspection
// endpoint on addr and starts the stderr summary ticker. It returns the
// metric set to wire into sweeps, the bound address (addr may carry
// port 0), and a stop function that flushes the final summary,
// optionally lingers so an external scraper can take a last snapshot,
// and closes the listener.
func startTelemetry(addr string, linger time.Duration) (*telemetry.Set, string, func(), error) {
	reg := telemetry.NewRegistry()
	set := telemetry.NewSet(reg)
	// The simulator has no network control plane, but it still serves
	// /traces (the fleet's window trees), /buildinfo, and a /healthz
	// that flips to draining once the run ends and the linger begins.
	var draining atomic.Bool
	srv, err := telemetry.ServeOpts(addr, reg, telemetry.HTTPOptions{
		Trace:    set.Trace,
		Draining: draining.Load,
	})
	if err != nil {
		return nil, "", nil, err
	}
	bound := srv.Addr()
	fmt.Fprintf(os.Stderr, "telemetry: %s\n", telemetry.ReadBuild())
	fmt.Fprintf(os.Stderr, "telemetry: listening on http://%s/metrics\n", bound)
	stopSummary := telemetry.StartSummary(os.Stderr, reg, 2*time.Second, summaryKeys...)
	stop := func() {
		draining.Store(true)
		stopSummary()
		if linger > 0 {
			fmt.Fprintf(os.Stderr, "telemetry: lingering %s on http://%s/metrics\n", linger, bound)
			time.Sleep(linger)
		}
		// Graceful drain: a scraper that connected during the linger and
		// is mid-/metrics finishes its snapshot instead of being cut.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck — teardown is bounded either way
	}
	return set, bound, stop, nil
}

package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"wbsn/internal/fleet"
	"wbsn/internal/link"
	"wbsn/internal/telemetry"
)

// TestTelemetryEndToEnd is the acceptance check for the -telemetry
// flag: bring the inspection endpoint up on an ephemeral port, drive a
// small lossy fleet through the full node → link → gateway chain, and
// scrape /metrics — the JSON must carry the per-stage latency
// histograms, the ARQ counters, the gateway queue gauge and the radio
// energy ledger.
func TestTelemetryEndToEnd(t *testing.T) {
	set, addr, stop, err := startTelemetry("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	res, err := fleet.Run(fleet.Config{
		Patients:    3,
		Shards:      2,
		DurationS:   5,
		Seed:        7,
		SolverIters: 30,
		Channel: link.ChannelConfig{
			PGoodToBad: 0.08, PBadToGood: 0.25, LossGood: 0.05, LossBad: 0.6,
		},
		Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patients) != 3 {
		t.Fatalf("fleet ran %d patients", len(res.Patients))
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}

	for _, h := range []string{
		"pipeline.stage.acquire.ns",
		"pipeline.stage.cs.ns",
		"pipeline.stage.link.ns",
		"pipeline.stage.gateway_decode.ns",
		"gateway.decode.ns",
		"link.radio.packet_uj",
	} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %q empty in /metrics", h)
		}
	}
	if snap.Counters["link.packets"] == 0 {
		t.Error("link.packets counter empty")
	}
	if snap.Counters["link.retransmissions"] == 0 {
		t.Error("lossy channel produced no retransmissions in /metrics")
	}
	if _, ok := snap.Gauges["gateway.queue.depth"]; !ok {
		t.Error("gateway.queue.depth gauge missing")
	}
	if snap.Gauges["gateway.queue.depth"].Value != 0 {
		t.Errorf("queue depth %d after run, want 0", snap.Gauges["gateway.queue.depth"].Value)
	}
	if snap.Floats["link.radio.energy_j"] <= 0 {
		t.Error("link.radio.energy_j not accumulated")
	}
	if snap.Counters["fleet.patients.done"] != 3 {
		t.Errorf("fleet.patients.done %d, want 3", snap.Counters["fleet.patients.done"])
	}
	if len(snap.Trace) == 0 {
		t.Error("trace ring empty in /metrics")
	}
}

package main

// The -throughput sweep measures the gateway reconstruction engine:
// a batch of CS-encoded records is decoded at increasing worker counts
// and the sweep reports records/s, windows/s and the speedup over one
// worker, verifying along the way that every parallel reconstruction is
// bit identical to the serial one.

import (
	"fmt"
	"runtime"
	"time"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
)

// encodeThroughputBatch runs records through ModeCS node streams and
// returns one window batch per record.
func encodeThroughputBatch(records int, duration float64, seed int64) ([][][][]float64, core.Config, error) {
	batches := make([][][][]float64, 0, records)
	var ncfg core.Config
	for r := 0; r < records; r++ {
		rec := ecg.Generate(ecg.Config{Seed: seed + int64(r), Duration: duration})
		node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: seed})
		if err != nil {
			return nil, ncfg, err
		}
		ncfg = node.Config()
		stream, err := node.NewStream()
		if err != nil {
			return nil, ncfg, err
		}
		chunk := make([][]float64, len(rec.Leads))
		for li := range chunk {
			chunk[li] = rec.Clean[li]
		}
		events, err := stream.PushBlock(chunk)
		if err != nil {
			return nil, ncfg, err
		}
		var windows [][][]float64
		for _, e := range events {
			if e.Kind == core.EventPacket && e.Measurements != nil {
				windows = append(windows, e.Measurements)
			}
		}
		batches = append(batches, windows)
	}
	return batches, ncfg, nil
}

func runThroughputSweep(seed int64, solverTol float64, engineBatch int) error {
	const (
		records  = 4
		duration = 8.0 // seconds per record
	)
	batches, ncfg, err := encodeThroughputBatch(records, duration, seed)
	if err != nil {
		return err
	}
	cfg := gateway.MatchNode(ncfg)
	// Tol arms the convergence-aware early exit; windows stay cold
	// (warm-starting would serialise each record's windows, defeating
	// the point of the parallel sweep) so every decode remains an
	// independent pure function and bit-identity across worker counts
	// still holds.
	cfg.Solver.Tol = solverTol
	totalWindows := 0
	for _, b := range batches {
		totalWindows += len(b)
	}
	maxW := runtime.GOMAXPROCS(0)
	solver := "fixed-budget solver"
	if solverTol > 0 {
		solver = fmt.Sprintf("early-exit solver, tol %g", solverTol)
	}
	if engineBatch > 1 {
		solver += fmt.Sprintf(", batch %d", engineBatch)
	}
	fmt.Printf("== Gateway reconstruction throughput: %d records x %.0f s, %d windows, GOMAXPROCS=%d, %s ==\n",
		records, duration, totalWindows, maxW, solver)
	fmt.Printf("%-8s %12s %12s %10s %9s\n", "workers", "records/s", "windows/s", "wall(ms)", "speedup")

	var reference [][][][]float64 // per-record decoded windows at workers=1
	var base time.Duration
	// Sweep 1, 2, 4, ... up to GOMAXPROCS but at least 4, so the
	// multi-worker path is exercised (and its bit-identity checked) even
	// on a single-core host, where the speedup honestly reports ~1x.
	top := maxW
	if top < 4 {
		top = 4
	}
	workerSet := []int{1}
	for w := 2; w <= top; w *= 2 {
		workerSet = append(workerSet, w)
	}
	if last := workerSet[len(workerSet)-1]; last != top {
		workerSet = append(workerSet, top)
	}
	for _, workers := range workerSet {
		eng, err := gateway.NewEngine(cfg, gateway.EngineConfig{Workers: workers, Batch: engineBatch})
		if err != nil {
			return err
		}
		decoded := make([][][][]float64, len(batches))
		start := time.Now()
		for bi, windows := range batches {
			decoded[bi], err = eng.DecodeWindows(windows)
			if err != nil {
				eng.Close()
				return err
			}
		}
		wall := time.Since(start)
		eng.Close()
		if reference == nil {
			reference = decoded
			base = wall
		} else if err := verifyIdentical(reference, decoded); err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		secs := wall.Seconds()
		fmt.Printf("%-8d %12.2f %12.2f %10.1f %8.2fx\n",
			workers, float64(records)/secs, float64(totalWindows)/secs,
			wall.Seconds()*1e3, base.Seconds()/secs)
	}
	fmt.Println("\nall worker counts produced bit-identical reconstructions")
	return nil
}

// verifyIdentical confirms the parallel decode matches the serial
// reference bit for bit.
func verifyIdentical(want, got [][][][]float64) error {
	for bi := range want {
		if len(got[bi]) != len(want[bi]) {
			return fmt.Errorf("record %d: %d windows, want %d", bi, len(got[bi]), len(want[bi]))
		}
		for wi := range want[bi] {
			for li := range want[bi][wi] {
				for i := range want[bi][wi][li] {
					if got[bi][wi][li][i] != want[bi][wi][li][i] {
						return fmt.Errorf("record %d window %d lead %d sample %d: not bit-identical to serial", bi, wi, li, i)
					}
				}
			}
		}
	}
	return nil
}

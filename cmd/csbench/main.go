// Command csbench regenerates the compressed-sensing results of the
// paper's evaluation: the Figure 5 SNR-vs-CR quality curves (single-lead
// vs multi-lead joint recovery) and the Figure 6 node energy breakdown.
//
// Usage:
//
//	csbench -fig5            # SNR vs CR sweep (slow: full reconstructions)
//	csbench -fig6            # energy breakdown at the quality operating points
//	csbench -fig5 -records 4 -windows 2 -iters 120
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"wbsn/internal/cs"
	"wbsn/internal/ecg"
	"wbsn/internal/energy"
)

func main() {
	var (
		fig5    = flag.Bool("fig5", false, "run the Figure 5 SNR-vs-CR sweep")
		fig6    = flag.Bool("fig6", false, "run the Figure 6 energy breakdown")
		records = flag.Int("records", 3, "records in the evaluation set")
		windows = flag.Int("windows", 2, "windows per record")
		iters   = flag.Int("iters", 150, "FISTA iterations per pass")
		rwts    = flag.Int("reweights", 2, "iterative-reweighting passes")
		density = flag.Int("density", 4, "sparse-binary nonzeros per column")
		seed    = flag.Int64("seed", 42, "experiment seed")
	)
	flag.Parse()
	if !*fig5 && !*fig6 {
		fmt.Fprintln(os.Stderr, "csbench: pass -fig5 and/or -fig6")
		os.Exit(2)
	}
	if *fig5 {
		runFig5(*records, *windows, *iters, *rwts, *density, *seed)
	}
	if *fig6 {
		runFig6(*density)
	}
}

func runFig5(records, windows, iters, reweights, density int, seed int64) {
	fmt.Println("== Figure 5: averaged output SNR vs compression ratio ==")
	set := ecg.GenerateSet(ecg.Config{Duration: 20}, seed, records)
	crs := []float64{20, 30, 40, 50, 55, 60, 65, 70, 75, 80, 85, 90}
	cfg := cs.SweepConfig{
		Density:             density,
		MaxWindowsPerRecord: windows,
		Seed:                seed,
		Solver:              cs.SolverConfig{Iters: iters, Reweights: reweights},
	}
	pts, err := cs.Sweep(set, crs, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csbench: sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%6s  %12s  %12s\n", "CR(%)", "SNR-SL(dB)", "SNR-ML(dB)")
	for _, p := range pts {
		fmt.Printf("%6.1f  %12.2f  %12.2f\n", p.CR, p.SNRSingle, p.SNRMulti)
	}
	slCross := cs.CrossingCR(pts, 20, false)
	mlCross := cs.CrossingCR(pts, 20, true)
	fmt.Printf("\n20 dB crossing: single-lead CR = %.1f (paper: 65.9), multi-lead CR = %.1f (paper: 72.7)\n",
		slCross, mlCross)
	if !math.IsNaN(slCross) && !math.IsNaN(mlCross) && mlCross > slCross {
		fmt.Println("shape check PASS: multi-lead sustains 20 dB to higher compression")
	} else {
		fmt.Println("shape check FAIL")
	}
}

func runFig6(density int) {
	fmt.Println("== Figure 6: node energy breakdown per 2-second window ==")
	node := energy.DefaultNode()
	w := energy.WindowSpec{SamplesPerLead: 512, Leads: 3, BitsPerSample: 12}
	raw := node.RawStreamingWindow(w)
	adds := density * w.SamplesPerLead
	sl := node.CSWindow("Single-Lead CS", w, cs.MeasurementsForCR(w.SamplesPerLead, 65.9), adds)
	ml := node.CSWindow("Multi-Lead CS", w, cs.MeasurementsForCR(w.SamplesPerLead, 72.7), adds)
	fmt.Printf("%-16s %10s %10s %10s %10s %10s\n", "config", "radio(µJ)", "sample(µJ)", "comp(µJ)", "os(µJ)", "total(µJ)")
	for _, b := range []energy.Breakdown{raw, sl, ml} {
		fmt.Printf("%-16s %10.1f %10.1f %10.2f %10.1f %10.1f\n",
			b.Label, b.RadioJ*1e6, b.SampleJ*1e6, b.CompJ*1e6, b.OSJ*1e6, b.TotalJ()*1e6)
	}
	fmt.Printf("\npower reduction vs raw: single-lead %.1f%% (paper: 44.7%%), multi-lead %.1f%% (paper: 56.1%%)\n",
		100*energy.PowerReduction(raw, sl), 100*energy.PowerReduction(raw, ml))
	bat := energy.DefaultBattery()
	for _, b := range []energy.Breakdown{raw, sl, ml} {
		avg := b.TotalJ() / 2 // window is 2 s
		fmt.Printf("battery lifetime (%s): %.1f days\n", b.Label, bat.LifetimeHours(avg)/24)
	}
}

// Command wbsn-loadgen replays synthetic fleet traffic against a
// running wbsn-gateway: hundreds of concurrent streams, each delivering
// link-encoded CS records over TCP with reconnection, exponential
// backoff and resume. With -verify every distinct record is also
// reconstructed in-process and each stream's server digest is compared
// against it — the bit-identity check the networked path is held to.
//
// The -fault-* flags arm the transport fault injector (connection
// resets, truncated writes, bit flips, slowloris pacing, duplicate
// reconnects); digests must stay bit-identical regardless.
//
// Exit status is non-zero when any stream fails or any digest
// mismatches, so the command doubles as the CI soak assertion:
//
//	wbsn-loadgen -addr 127.0.0.1:9700 -seed 42 -streams 100 \
//	    -run-for 30s -verify -fault-reset 0.05 -fault-bitflip 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wbsn/internal/netgw"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9700", "gateway address")
		streams     = flag.Int("streams", 8, "concurrent streams")
		records     = flag.Int("records", 0, "distinct records shared round-robin (0 = min(streams, 8))")
		durationS   = flag.Float64("duration", 8, "seconds of ECG per record")
		seed        = flag.Int64("seed", 42, "sensing-matrix and record seed (must match the server)")
		csRatio     = flag.Float64("cs-ratio", 60, "compressed-sensing ratio in percent (must match the server)")
		solverIters = flag.Int("solver-iters", 0, "FISTA iteration budget for -verify (0 keeps the library default; must match the server)")
		solverTol   = flag.Float64("solver-tol", 0, "FISTA convergence tolerance for -verify (must match the server)")
		warm        = flag.Bool("warm", false, "warm-start flag (must match the server)")
		runFor      = flag.Duration("run-for", 0, "keep streams looping until this deadline (0 = one record per stream)")
		verify      = flag.Bool("verify", false, "reconstruct each record in-process and compare digests")
		traced      = flag.Bool("trace", false, "send version-2 (traced) link frames so the server's /traces stitches end-to-end window trees")
		inFlight    = flag.Int("in-flight", 0, "unacked windows per stream (0 = default 8)")
		timeout     = flag.Duration("timeout", 0, "per-operation client deadline (0 = default 5s)")
		attempts    = flag.Int("max-attempts", 0, "consecutive connection failures before a stream gives up (0 = default 10)")

		fReset     = flag.Float64("fault-reset", 0, "per-write probability of a connection reset")
		fTruncate  = flag.Float64("fault-truncate", 0, "per-write probability of a truncated write then abort")
		fBitFlip   = flag.Float64("fault-bitflip", 0, "per-write probability of flipping one bit in flight")
		fSlowloris = flag.Float64("fault-slowloris", 0, "per-write probability of slowloris-paced dribble")
		fDupHello  = flag.Float64("fault-dup", 0, "per-dial probability of a duplicate ghost reconnect")
	)
	flag.Parse()

	cfg := netgw.LoadgenConfig{
		Addr:        *addr,
		Streams:     *streams,
		Records:     *records,
		DurationS:   *durationS,
		Seed:        *seed,
		CSRatio:     *csRatio,
		SolverIters: *solverIters,
		SolverTol:   *solverTol,
		WarmStart:   *warm,
		RunFor:      *runFor,
		Verify:      *verify,
		Trace:       *traced,
		Client: netgw.ClientConfig{
			InFlight:    *inFlight,
			Timeout:     *timeout,
			MaxAttempts: *attempts,
			Faults: netgw.FaultConfig{
				PReset:     *fReset,
				PTruncate:  *fTruncate,
				PBitFlip:   *fBitFlip,
				PSlowloris: *fSlowloris,
				PDupHello:  *fDupHello,
			},
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "wbsn-loadgen: "+format+"\n", args...)
		},
	}
	start := time.Now()
	res, err := netgw.RunLoadgen(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wbsn-loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wbsn-loadgen: %s (elapsed %s)\n", res, time.Since(start).Round(time.Millisecond))
	if res.Failures > 0 || res.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "wbsn-loadgen: FAILED: %d stream failures, %d digest mismatches\n",
			res.Failures, res.Mismatches)
		os.Exit(1)
	}
	if *verify {
		fmt.Printf("wbsn-loadgen: all %d records bit-identical to in-process reconstruction\n", res.RecordsDone)
	}
}

// Command ecggen synthesises annotated multi-lead ECG records and writes
// them as CSV (signal) plus an annotation file, replacing the clinical
// databases the paper evaluates on.
//
// Usage:
//
//	ecggen -out rec.csv -ann rec.ann.csv -dur 60 -rhythm nsr -noise ambulatory -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"wbsn/internal/ecg"
)

func main() {
	var (
		out    = flag.String("out", "", "signal CSV output path (default stdout)")
		ann    = flag.String("ann", "", "annotation CSV output path (omitted if empty)")
		dur    = flag.Float64("dur", 30, "record duration in seconds")
		fs     = flag.Float64("fs", 256, "sampling rate in Hz")
		rhythm = flag.String("rhythm", "nsr", "rhythm: nsr or af")
		noise  = flag.String("noise", "clean", "noise profile: clean or ambulatory")
		pvc    = flag.Float64("pvc", 0, "per-beat PVC probability (nsr only)")
		apb    = flag.Float64("apb", 0, "per-beat APB probability (nsr only)")
		hr     = flag.Float64("hr", 0, "mean heart rate in bpm (0 = default)")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	cfg := ecg.Config{
		Fs:       *fs,
		Duration: *dur,
		Seed:     *seed,
		Rhythm: ecg.RhythmConfig{
			MeanHR:  *hr,
			PVCRate: *pvc,
			APBRate: *apb,
		},
	}
	switch *rhythm {
	case "nsr":
		cfg.Rhythm.Kind = ecg.RhythmNSR
	case "af":
		cfg.Rhythm.Kind = ecg.RhythmAF
	default:
		fatalf("unknown rhythm %q (want nsr or af)", *rhythm)
	}
	switch *noise {
	case "clean":
		cfg.Noise = ecg.CleanNoise()
	case "ambulatory":
		cfg.Noise = ecg.AmbulatoryNoise()
	default:
		fatalf("unknown noise profile %q (want clean or ambulatory)", *noise)
	}
	rec := ecg.Generate(cfg)
	if err := rec.Validate(); err != nil {
		fatalf("generated record failed validation: %v", err)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		dst = f
	}
	if err := rec.WriteCSV(dst); err != nil {
		fatalf("write signal: %v", err)
	}
	if *ann != "" {
		f, err := os.Create(*ann)
		if err != nil {
			fatalf("create %s: %v", *ann, err)
		}
		defer f.Close()
		if err := rec.WriteAnnotations(f); err != nil {
			fatalf("write annotations: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d leads x %d samples at %.0f Hz, %d beats\n",
		rec.Name, len(rec.Leads), rec.Len(), rec.Fs, len(rec.Beats))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecggen: "+format+"\n", args...)
	os.Exit(1)
}

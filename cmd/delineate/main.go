// Command delineate reproduces the paper's delineation result (Section V,
// "Text-1"): it runs the wavelet-based (or morphological) delineator over
// synthetic annotated records and reports per-fiducial sensitivity and
// PPV — the paper claims "above 90% in all cases" — together with the
// embedded resource estimates (≈7% duty cycle, ≤7.2 kB memory).
//
// Usage:
//
//	delineate -records 5 -dur 60 -noise ambulatory -method wavelet
//	delineate -in rec.csv -ann rec.ann.csv        # external record
package main

import (
	"flag"
	"fmt"
	"os"

	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/morpho"
	"wbsn/internal/wbsn"
)

func main() {
	var (
		records = flag.Int("records", 5, "number of synthetic records")
		dur     = flag.Float64("dur", 60, "record duration in seconds")
		noise   = flag.String("noise", "ambulatory", "noise profile: clean or ambulatory")
		method  = flag.String("method", "wavelet", "delineator: wavelet or morph")
		seed    = flag.Int64("seed", 7, "generator seed")
		in      = flag.String("in", "", "signal CSV to delineate instead of synthetic records")
		annPath = flag.String("ann", "", "annotation CSV for the external record (enables scoring)")
	)
	flag.Parse()
	fs := 256.0
	var external *ecg.Record
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("open %s: %v", *in, err)
		}
		rec, err := ecg.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("read %s: %v", *in, err)
		}
		if *annPath != "" {
			af, err := os.Open(*annPath)
			if err != nil {
				fatalf("open %s: %v", *annPath, err)
			}
			if err := rec.ReadAnnotations(af); err != nil {
				fatalf("read %s: %v", *annPath, err)
			}
			af.Close()
		}
		external = rec
		fs = rec.Fs
	}
	ncfg := ecg.CleanNoise()
	if *noise == "ambulatory" {
		ncfg = ecg.AmbulatoryNoise()
	}
	var delineate func([]float64) ([]delineation.BeatFiducials, error)
	switch *method {
	case "wavelet":
		d, err := delineation.NewWaveletDelineator(delineation.Config{Fs: fs})
		if err != nil {
			fatalf("%v", err)
		}
		delineate = d.Delineate
	case "morph":
		d, err := delineation.NewMorphDelineator(delineation.Config{Fs: fs})
		if err != nil {
			fatalf("%v", err)
		}
		delineate = d.Delineate
	default:
		fatalf("unknown method %q", *method)
	}
	if external != nil {
		beats, err := delineate(dsp.CombineRMS(external.Leads))
		if err != nil {
			fatalf("delineate: %v", err)
		}
		fmt.Printf("== %s: %d beats delineated over %.0f s ==\n", *in, len(beats), external.Duration())
		if len(external.Beats) > 0 {
			rep := delineation.Evaluate(external, beats, delineation.DefaultTolerances())
			fmt.Print(rep.String())
		}
		return
	}
	var total delineation.Report
	for i := 0; i < *records; i++ {
		rec := ecg.Generate(ecg.Config{Seed: *seed + int64(i), Duration: *dur, Noise: ncfg})
		leads := rec.Leads
		if *noise == "ambulatory" {
			f, err := morpho.FilterLeads(leads, morpho.FilterConfig{Fs: fs})
			if err != nil {
				fatalf("filter: %v", err)
			}
			leads = f
		}
		beats, err := delineate(dsp.CombineRMS(leads))
		if err != nil {
			fatalf("delineate: %v", err)
		}
		total = delineation.Merge(total, delineation.Evaluate(rec, beats, delineation.DefaultTolerances()))
	}
	fmt.Printf("== Delineation accuracy (%s, %s noise, %d records x %.0f s) ==\n",
		*method, *noise, *records, *dur)
	fmt.Print(total.String())
	if total.AllAbove(0.90) {
		fmt.Println("shape check PASS: all Se/PPV above the paper's 90% target")
	} else {
		fmt.Println("shape check FAIL: some fiducial below 90%")
	}

	// Embedded resource estimates (paper: 7% duty cycle, 7.2 kB memory).
	app := wbsn.App3LMMD()
	fmt.Println("\n== Embedded resource estimate ==")
	emulateResources(app)
}

func emulateResources(app wbsn.AppSpec) {
	res, err := wbsn.RunApp(app, wbsn.DefaultEnergy(), 1)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	// Duty cycle at the platform's nominal few-MHz clock.
	const fNominal = 2e6
	duty := wbsn.DutyCycleAt(res.SCStats.Cycles, fNominal, 1.0)
	fmt.Printf("single-core cycles per 1 s window: %d -> duty cycle %.1f%% at %.0f MHz (paper: 7%%)\n",
		res.SCStats.Cycles, 100*duty, fNominal/1e6)
	// Memory: the simulator unrolls the per-sample kernel 256 times, so
	// the deployed code footprint is one loop body (16-bit instructions)
	// plus the transform buffers: 5 à-trous scales of 256 samples at
	// 16 bits, the input window, and the delineator's working state.
	mcProg, _, err := app.Programs()
	if err != nil {
		fatalf("%v", err)
	}
	codeBytes := 2 * (len(mcProg.Instrs) / 256) // one per-sample body, 2 B/instr
	dataBytes := 5*256*2 + 256*2 + 512
	total := float64(codeBytes+dataBytes) / 1024
	fmt.Printf("estimated memory footprint: %.1f kB code+data (paper: 7.2 kB)\n", total)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delineate: "+format+"\n", args...)
	os.Exit(1)
}

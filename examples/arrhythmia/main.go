// Arrhythmia monitor: the SmartCardia-style application of Section V —
// a 3-lead node performing on-line beat classification and atrial-
// fibrillation detection, transmitting compressed excerpts only when an
// abnormality is detected.
//
//	go run ./examples/arrhythmia
package main

import (
	"fmt"
	"log"

	"wbsn/internal/core"
	"wbsn/internal/cs"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
)

func main() {
	// Off-line training of the embedded classifier (ref [14]: trained on
	// annotated databases, ported to the node).
	fmt.Println("training heartbeat classifier on annotated records...")
	train := ecg.GenerateSet(ecg.Config{
		Duration: 120,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.08, APBRate: 0.05},
		Noise:    ecg.NoiseConfig{EMG: 0.015},
	}, 100, 4)
	cl, err := core.TrainClassifier(train, 256, 9)
	if err != nil {
		log.Fatal(err)
	}

	// The monitored patient: sinus rhythm with ventricular ectopy,
	// followed by an AF episode.
	nsr := ecg.Generate(ecg.Config{
		Seed: 500, Duration: 120,
		Rhythm: ecg.RhythmConfig{PVCRate: 0.06},
		Noise:  ecg.NoiseConfig{EMG: 0.015},
	})
	episode := ecg.Generate(ecg.Config{
		Seed: 501, Duration: 120,
		Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF},
		Noise:  ecg.NoiseConfig{EMG: 0.015},
	})

	// Stage 1 — beat classification.
	clNode, err := core.NewNode(core.Config{Mode: core.ModeClassification, Classifier: cl})
	if err != nil {
		log.Fatal(err)
	}
	res, err := clNode.Process(nsr)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, b := range res.Beats {
		counts[b.Label]++
	}
	fmt.Printf("\nsinus segment: %d beats — %d normal, %d PVC, %d APB (bandwidth %.1f B/s)\n",
		len(res.Beats), counts[int(ecg.LabelNormal)], counts[int(ecg.LabelPVC)],
		counts[int(ecg.LabelAPB)], res.TxBytesPerSecond)

	// Stage 2 — AF surveillance.
	afNode, err := core.NewNode(core.Config{Mode: core.ModeAFAlarm})
	if err != nil {
		log.Fatal(err)
	}
	for _, seg := range []*ecg.Record{nsr, episode} {
		r, err := afNode.Process(seg)
		if err != nil {
			log.Fatal(err)
		}
		status := "normal rhythm"
		if r.AFAlarm {
			status = "ATRIAL FIBRILLATION — alerting remote server"
		}
		afWins := 0
		for _, d := range r.AFDecisions {
			if d.AF {
				afWins++
			}
		}
		fmt.Printf("segment %-28s: %s (%d/%d windows voted AF)\n",
			seg.Name, status, afWins, len(r.AFDecisions))
	}

	// Stage 3 — on alarm, transmit a compressed excerpt (Section V: "CS
	// is employed to efficiently transmit excerpts of the acquired
	// signals, periodically or when an abnormality is detected") and
	// reconstruct it remotely (ref [5]'s real-time receiver).
	csNode, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	excerpt, err := csNode.Process(episode)
	if err != nil {
		log.Fatal(err)
	}
	rawBytes := episode.Len() * len(episode.Leads) * 12 / 8
	fmt.Printf("\nalarm excerpt: %d B compressed vs %d B raw (CR %.1f%%), node energy %.1f mJ\n",
		excerpt.TxBytes, rawBytes,
		cs.CRForMeasurements(rawBytes, excerpt.TxBytes),
		excerpt.Energy.TotalJ()*1e3)

	// Gateway side: reconstruct the first seconds of the excerpt and
	// verify the episode is still readable remotely.
	stream, err := csNode.NewStream()
	if err != nil {
		log.Fatal(err)
	}
	rx, err := gateway.NewReceiver(gateway.MatchNode(csNode.Config()))
	if err != nil {
		log.Fatal(err)
	}
	cut := 10 * 256 // ship 10 s of the episode
	chunk := make([][]float64, len(episode.Leads))
	for li := range chunk {
		chunk[li] = episode.Leads[li][:cut]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		log.Fatal(err)
	}
	if err := rx.ConsumeEvents(events); err != nil {
		log.Fatal(err)
	}
	n := rx.SamplesReceived()
	snr := 0.0
	for li := range episode.Leads {
		snr += dsp.SNRdB(episode.Leads[li][:n], rx.Signal()[li])
	}
	snr /= float64(len(episode.Leads))
	remoteBeats, err := rx.Delineate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway reconstructed %.1f s at %.1f dB; remote delineation found %d beats in the excerpt\n",
		float64(n)/256, snr, len(remoteBeats))
}

// Faulty: run the compress → transmit → reconstruct → diagnose chain
// over a misbehaving body and a misbehaving radio. One lead detaches
// mid-record, another picks up motion spikes, and the radio hop is a
// bursty Gilbert–Elliott channel; the demo shows the three defence
// layers working together — per-lead signal-quality gating, ARQ
// retransmission with its energy bill, and graceful mode degradation
// when the link quality collapses.
//
//	go run ./examples/faulty
package main

import (
	"fmt"
	"log"

	"wbsn/internal/core"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/gateway"
	"wbsn/internal/link"
)

func main() {
	// A minute of ambulatory ECG with light muscle noise.
	rec := ecg.Generate(ecg.Config{
		Seed:     9,
		Duration: 60,
		Noise:    ecg.NoiseConfig{EMG: 0.012},
	})
	fs := rec.Fs
	n := rec.Len()

	// The body misbehaves: lead 0 detaches for 12 s, lead 2 rides
	// motion spikes for two stretches.
	faulted, faults, err := link.InjectFaults(rec.Leads, fs, link.FaultConfig{
		Schedule: []link.LeadFault{
			{Lead: 0, Start: 20 * int(fs), End: 32 * int(fs), Kind: link.FaultLeadOff},
			{Lead: 2, Start: 8 * int(fs), End: 11 * int(fs), Kind: link.FaultSpike, Level: 4},
			{Lead: 2, Start: 44 * int(fs), End: 47 * int(fs), Kind: link.FaultSpike, Level: 4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s: %d leads, %.0f s at %.0f Hz, %d beats\n", rec.Name, len(rec.Leads), rec.Duration(), fs, len(rec.Beats))
	fmt.Println("\ninjected signal faults:")
	for _, f := range faults {
		fmt.Printf("  lead %d %-10v %5.1f .. %5.1f s\n", f.Lead, f.Kind, float64(f.Start)/fs, float64(f.End)/fs)
	}
	fmt.Println("\nper-lead signal quality index (fraction of usable 1 s windows):")
	for li, q := range link.LeadSQIs(faulted, fs, link.SQIConfig{}) {
		fmt.Printf("  lead %d: %.2f\n", li, q)
	}

	// The node compresses the faulted leads; the radio hop is a bursty
	// channel whose bad state eats most frames.
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		log.Fatal(err)
	}
	rx, err := gateway.NewReceiver(gateway.MatchNode(node.Config()))
	if err != nil {
		log.Fatal(err)
	}
	chCfg := link.ChannelConfig{
		PGoodToBad: 0.05, PBadToGood: 0.15,
		LossGood: 0.02, LossBad: 0.9,
		BERBad: 1e-6, PReorder: 0.02, Seed: 11,
	}
	ch, err := link.NewChannel(chCfg)
	if err != nil {
		log.Fatal(err)
	}
	lk, err := link.NewLink(link.ARQConfig{PAckLoss: 0.05, Seed: 7}, ch, rx)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := core.NewModeController(core.ModeCS, core.DegradeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchannel: Gilbert–Elliott, stationary frame loss %.0f%%\n", 100*chCfg.StationaryLoss())

	events, err := stream.PushBlock(faulted)
	if err != nil {
		log.Fatal(err)
	}
	// Stream the CS windows over the lossy hop; the mode controller
	// watches the per-window delivery outcome and downgrades the node
	// when the smoothed ratio collapses.
	downAt := -1
	for _, e := range events {
		if e.Kind != core.EventPacket || e.Measurements == nil {
			continue
		}
		ok, err := lk.SendMeasurements(e.At, e.Measurements)
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if ok {
			ratio = 1
		}
		if m, changed := mc.Observe(e.At, ratio); changed && m == core.ModeDelineation {
			downAt = e.At + node.Config().CSWindow
			break
		}
	}
	if err := lk.Close(); err != nil {
		log.Fatal(err)
	}
	report := lk.Report()

	fmt.Println("\nARQ session over the lossy hop:")
	fmt.Printf("  windows    %3d sent, %3d delivered (%.0f%%), %d lost after exhausting retries\n",
		report.Packets, report.Delivered, 100*report.DeliveryRatio(), report.Lost)
	fmt.Printf("  attempts   %3d total, %d retransmissions, %d acks lost, %.1f ms backoff\n",
		report.Attempts, report.Retransmissions, report.AcksLost, 1e3*report.BackoffS)
	fmt.Printf("  channel    %d frames sent (%d during a burst), %d dropped, %d duplicated, %d reordered\n",
		report.Channel.Sent, report.Channel.BadFrames, report.Channel.Dropped,
		report.Channel.Duplicated, report.Channel.Reordered)
	fmt.Printf("  reassembly %d delivered, %d duplicates discarded, %d gaps zero-filled\n",
		report.Reassembly.Delivered, report.Reassembly.Duplicates, report.Reassembly.Filled)
	fmt.Printf("  energy     %.2f mJ spent vs %.2f mJ lossless — %.0f%% retransmission overhead\n",
		1e3*report.EnergyJ, 1e3*report.IdealEnergyJ,
		100*report.RetransmitEnergyJ()/report.IdealEnergyJ)

	// What the gateway got out of it.
	span := rx.SamplesReceived()
	if span > 0 {
		fmt.Println("\ngateway reconstruction (delivered span, zero-filled gaps included):")
		for li := range rx.Signal() {
			fmt.Printf("  lead %d SNR %5.1f dB\n", li, dsp.SNRdB(rec.Clean[li][:span], rx.Signal()[li]))
		}
		beats, err := rx.Delineate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  remote delineation found %d beats in %.0f s of delivered signal\n",
			len(beats), float64(span)/fs)
	}

	// Graceful degradation: the controller gave up on the link, so the
	// node falls back to on-node delineation — transmitting fiducials
	// (a few bytes per beat) instead of measurement windows, with
	// signal-quality gating dropping the faulted leads chunk by chunk.
	for _, tr := range mc.Transitions() {
		fmt.Printf("\nmode controller: %v\n", tr)
	}
	if downAt >= 0 && downAt < n {
		tail := make([][]float64, len(faulted))
		for li := range tail {
			tail[li] = faulted[li][downAt:]
		}
		dnode, err := core.NewNode(core.Config{Mode: core.ModeDelineation, GateLeads: true})
		if err != nil {
			log.Fatal(err)
		}
		dstream, err := dnode.NewStream()
		if err != nil {
			log.Fatal(err)
		}
		devents, err := dstream.PushBlock(tail)
		if err != nil {
			log.Fatal(err)
		}
		dtail, err := dstream.Flush()
		if err != nil {
			log.Fatal(err)
		}
		devents = append(devents, dtail...)
		beats := 0
		for _, e := range devents {
			if e.Kind == core.EventBeat {
				beats++
			}
		}
		fmt.Printf("degraded operation: on-node gated delineation from %.1f s found %d beats in the remaining %.1f s\n",
			float64(downAt)/fs, beats, float64(n-downAt)/fs)
	}
}

// Quickstart: synthesise a 3-lead ECG record, run the node at every
// abstraction level of the paper's Figure 1 ladder, and print how the
// transmitted bandwidth, node power and battery lifetime change as more
// intelligence moves on-node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wbsn/internal/core"
	"wbsn/internal/ecg"
)

func main() {
	// A minute of normal sinus rhythm with occasional ventricular
	// ectopy, light muscle noise — the ambulatory scenario of Section II.
	rec := ecg.Generate(ecg.Config{
		Seed:     1,
		Duration: 60,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.04},
		Noise:    ecg.NoiseConfig{EMG: 0.015},
	})
	fmt.Printf("record %s: %d leads, %.0f s at %.0f Hz, %d beats\n\n",
		rec.Name, len(rec.Leads), rec.Duration(), rec.Fs, len(rec.Beats))

	// Figure 1: each processing level cuts the radio bandwidth.
	rungs, err := core.Ladder(rec, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 ladder — on-node processing vs transmitted bandwidth:")
	fmt.Printf("%-22s %14s %12s %14s\n", "abstraction level", "radio (B/s)", "power (mW)", "battery (days)")
	for _, r := range rungs {
		fmt.Printf("%-22s %14.1f %12.3f %14.1f\n",
			r.Mode, r.TxBytesPerSecond, r.AvgPowerW*1e3, r.BatteryLifetimeH/24)
	}

	// Zoom into one rung: delineation output for the first beats.
	node, err := core.NewNode(core.Config{Mode: core.ModeDelineation})
	if err != nil {
		log.Fatal(err)
	}
	res, err := node.Process(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelineation found %d beats; first three:\n", len(res.Beats))
	for i, b := range res.Beats {
		if i >= 3 {
			break
		}
		f := b.Fiducials
		fmt.Printf("  beat %d: P %d..%d  QRS %d..%d (R %d)  T %d..%d\n",
			i+1, f.P.On, f.P.Off, f.QRS.On, f.QRS.Off, f.R, f.T.On, f.T.Off)
	}
}

// Multicore: the Section IV.B / Figure 7 study — mapping the cardiac
// pipeline onto the synchronized multi-core platform of ref [18] and
// comparing its average power against an equivalent single-core device,
// including the contribution of the broadcast instruction fetch.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"wbsn/internal/wbsn"
)

func main() {
	em := wbsn.DefaultEnergy()
	results, err := wbsn.RunFigure7(em, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synchronized multi-core vs single-core (Figure 7):")
	for _, r := range results {
		fmt.Printf("\n%s — %d cores, deadline %.0f ms\n",
			r.App, coresOf(r.App), deadlineOf(r.App)*1e3)
		bar := func(tag string, b wbsn.PowerBreakdown) {
			fmt.Printf("  %-3s %6.0f kHz @ %.2f V  core %5.2f | imem %5.2f | dmem %5.2f | intc %5.2f | leak %5.2f = %6.2f µW\n",
				tag, b.Freq/1e3, b.Voltage,
				b.CoreW*1e6, b.IMemW*1e6, b.DMemW*1e6, b.IntcW*1e6, b.LeakW*1e6, b.TotalW()*1e6)
		}
		bar("SC", r.SC)
		bar("MC", r.MC)
		fmt.Printf("  broadcast merged %.2fx of instruction fetches; total power reduction %.1f%%\n",
			r.MCStats.MergeRatio(), 100*r.Reduction)
	}
	fmt.Println("\nwhy it works: each core runs the same kernel on its own lead in")
	fmt.Println("lock-step, so one program-memory access feeds all cores (broadcast),")
	fmt.Println("and the P-way parallelism lets the whole platform run at ~f/P where")
	fmt.Println("the supply voltage — and with it the energy per operation — drops.")
}

func coresOf(app string) int {
	for _, a := range wbsn.Figure7Apps() {
		if a.Name == app {
			return a.Cores
		}
	}
	return 0
}

func deadlineOf(app string) float64 {
	for _, a := range wbsn.Figure7Apps() {
		if a.Name == app {
			return a.DeadlineS
		}
	}
	return 0
}

// Sleep monitor: the autonomous sleep-monitoring application the paper
// motivates ("autonomous sleep monitoring for critical scenarios, such
// as monitoring of the sleep state of airline pilots") plus the
// multi-modal estimation chain of Section IV.C: HRV-based sleep staging
// from the ECG, PPG pulse-arrival-time tracking, cuffless blood-pressure
// estimation and time-locked denoising (EA vs AICF).
//
//	go run ./examples/sleepmonitor
package main

import (
	"fmt"
	"log"

	"wbsn/internal/biosig"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/hrv"
)

func main() {
	fs := 256.0
	// A simulated night fragment: three 5-minute epochs with autonomic
	// profiles sweeping wake -> light -> deep sleep (rising RSA, falling
	// Mayer-wave dominance and heart rate).
	epochs := []struct {
		name string
		cfg  ecg.RhythmConfig
	}{
		{"wake", ecg.RhythmConfig{MeanHR: 76, HRVMayer: 0.055, HRVRSA: 0.012}},
		{"light sleep", ecg.RhythmConfig{MeanHR: 64, HRVMayer: 0.03, HRVRSA: 0.03}},
		{"deep sleep", ecg.RhythmConfig{MeanHR: 56, HRVMayer: 0.012, HRVRSA: 0.065}},
	}
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: fs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch        HR(bpm)  RMSSD(ms)  LF/HF  staged-as")
	for i, ep := range epochs {
		rec := ecg.Generate(ecg.Config{
			Seed: int64(100 + i), Duration: 300, Rhythm: ep.cfg,
			Noise: ecg.NoiseConfig{EMG: 0.01},
		})
		beats, err := del.Delineate(dsp.CombineRMS(rec.Leads))
		if err != nil {
			log.Fatal(err)
		}
		rr := make([]float64, 0, len(beats)-1)
		for j := 1; j < len(beats); j++ {
			rr = append(rr, float64(beats[j].R-beats[j-1].R)/fs)
		}
		m, err := hrv.Analyze(rr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.1f %10.1f %6.2f  %s\n",
			ep.name, m.MeanHR, m.RMSSD*1000, m.LFHF, hrv.ClassifyStage(m))
	}

	// Multi-modal stage: PPG time-locked to the ECG tracks a nocturnal
	// blood-pressure dip.
	fmt.Println("\ncuffless blood pressure from pulse arrival time (Section IV.C):")
	rec := ecg.Generate(ecg.Config{Seed: 200, Duration: 240, Rhythm: ecg.RhythmConfig{MeanHR: 60}})
	rPeaks := rec.RPeaks()
	bp := make([]float64, len(rPeaks))
	for i := range bp {
		// Dip from 125 to 105 mmHg across the segment.
		bp[i] = 125 - 20*float64(i)/float64(len(bp))
	}
	ppg, _, err := biosig.SynthesizePPG(rec.Len(), rPeaks, bp, biosig.PPGConfig{Fs: fs, NoiseRMS: 0.01, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	feet := biosig.DetectPulseFeet(ppg, rPeaks, fs)
	// Calibrate on the first half (against "cuff" references), then
	// track the dip on the rest.
	half0 := len(rPeaks) / 2
	var calPAT, calBP []float64
	for i := 0; i < half0; i++ {
		if feet[i] < 0 {
			continue
		}
		calPAT = append(calPAT, float64(feet[i]-rPeaks[i])/fs)
		calBP = append(calBP, bp[i])
	}
	cal, err := biosig.FitBPCalibration(calPAT, calBP)
	if err != nil {
		log.Fatal(err)
	}
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		i := int(frac * float64(len(rPeaks)))
		if feet[i] < 0 {
			continue
		}
		pat := float64(feet[i]-rPeaks[i]) / fs
		fmt.Printf("  t=%5.0fs  PAT=%.0f ms  PWV=%.2f m/s  BP est %.1f mmHg (true %.1f)\n",
			float64(rPeaks[i])/fs, pat*1000, biosig.PWVFromPAT(pat, 0.65),
			cal.Estimate(pat), bp[i])
	}

	// Denoising comparison: ensemble averaging loses the beat-to-beat
	// dynamics the AICF keeps (Section IV.C).
	fmt.Println("\ntime-locked PPG denoising, EA vs AICF on an amplitude change:")
	half := len(rPeaks) / 2
	ppg2 := make([]float64, len(ppg))
	copy(ppg2, ppg)
	for i := rPeaks[half]; i < len(ppg2); i++ {
		ppg2[i] *= 0.6 // vasoconstriction halfway through
	}
	w := int(0.5 * fs)
	ea := biosig.EnsembleAverage(ppg2, rPeaks, 0, w)
	aicf, err := biosig.NewAICF(w, 0, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	outs := aicf.Filter(ppg2, rPeaks)
	peak := func(x []float64) float64 {
		_, hi := dsp.MinMax(x)
		return hi
	}
	fmt.Printf("  EA template peak:   %.2f (stuck between the two states)\n", peak(ea))
	fmt.Printf("  AICF final peak:    %.2f (tracked the vasoconstriction)\n", peak(outs[len(outs)-1]))
}

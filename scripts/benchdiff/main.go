// Command benchdiff compares two benchmark captures produced by
// scripts/bench.sh (go test -json event streams) and prints the
// per-benchmark ns/op, B/op and allocs/op movement plus the throughput
// metrics the suite reports (records/s, windows/s, patients/s).
//
// Usage:
//
//	benchdiff [-threshold PCT] OLD.json NEW.json
//
// With -threshold the table is followed by a one-line PASS/REGRESSED
// verdict per benchmark and metric: REGRESSED when ns/op, B/op or
// allocs/op moved up by more than PCT percent, PASS otherwise — memory
// regressions gate exactly like time regressions. The verdict lines
// make CI logs grep-able; the exit status stays informational.
//
// The tool is informational: host noise on shared runners routinely
// moves ns/op by ±30% run to run (BENCH_PR6.json re-measured PR5's
// unchanged early-exit engine 39% slower), so CI runs it non-gating
// and humans read the deltas alongside the within-run ratios in
// EXPERIMENTS.md. Exit status is non-zero only when a capture cannot
// be parsed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line: the ns/op figure plus every custom
// "value unit" pair that followed it.
type result struct {
	nsPerOp float64
	metrics map[string]float64
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"regression threshold in percent: print PASS/REGRESSED per benchmark when ns/op moves up by more than this")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldSet, err := parseCapture(oldPath)
	if err != nil {
		fail("%s: %v", oldPath, err)
	}
	newSet, err := parseCapture(newPath)
	if err != nil {
		fail("%s: %v", newPath, err)
	}

	names := make([]string, 0, len(newSet))
	for name := range newSet {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, name := range names {
		nw := newSet[name]
		od, ok := oldSet[name]
		if !ok {
			fmt.Printf("%-60s %14s %14s %8s\n", name+" [ns/op]", "-", formatNs(nw.nsPerOp), "new")
			continue
		}
		fmt.Printf("%-60s %14s %14s %s\n",
			name+" [ns/op]", formatNs(od.nsPerOp), formatNs(nw.nsPerOp), delta(od.nsPerOp, nw.nsPerOp))
		for _, unit := range []string{"records/s", "windows/s", "patients/s", "B/op", "allocs/op"} {
			ov, okOld := od.metrics[unit]
			nv, okNew := nw.metrics[unit]
			if !okOld || !okNew {
				continue
			}
			fmt.Printf("%-60s %14.2f %14.2f %s\n", name+" ["+unit+"]", ov, nv, delta(ov, nv))
		}
	}
	for name := range oldSet {
		if _, ok := newSet[name]; !ok {
			fmt.Printf("%-60s %14s %14s %8s\n", name+" [ns/op]", formatNs(oldSet[name].nsPerOp), "-", "gone")
		}
	}
	if *threshold > 0 {
		fmt.Printf("\nthreshold %.1f%% (ns/op, B/op, allocs/op):\n", *threshold)
		regressed := 0
		for _, name := range names {
			od, ok := oldSet[name]
			if !ok {
				continue
			}
			nw := newSet[name]
			checks := []struct {
				unit     string
				old, new float64
			}{
				{"ns/op", od.nsPerOp, nw.nsPerOp},
				{"B/op", od.metrics["B/op"], nw.metrics["B/op"]},
				{"allocs/op", od.metrics["allocs/op"], nw.metrics["allocs/op"]},
			}
			for _, c := range checks {
				if c.old == 0 {
					continue
				}
				pct := 100 * (c.new - c.old) / c.old
				verdict := "PASS     "
				if pct > *threshold {
					verdict = "REGRESSED"
					regressed++
				}
				fmt.Printf("%s %-60s %-9s %+7.1f%%\n", verdict, name, c.unit, pct)
			}
		}
		if regressed == 0 {
			fmt.Println("all benchmarks within threshold")
		} else {
			fmt.Printf("%d metric(s) regressed beyond %.1f%%\n", regressed, *threshold)
		}
	}
}

// parseCapture replays a go-test JSON event stream, reassembles the
// Output fields (a benchmark's name and its result figures may arrive
// as separate events) and collects every benchmark result line.
func parseCapture(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Output string
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("not a go-test JSON event stream: %w", err)
		}
		buf.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, line := range strings.Split(buf.String(), "\n") {
		name, res, ok := parseBenchLine(line)
		if ok {
			out[name] = res
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

// parseBenchLine decodes "BenchmarkName[-procs] N value ns/op [value
// unit]...". The -procs suffix is stripped so captures taken at
// different GOMAXPROCS still line up.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := result{metrics: make(map[string]float64)}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		if fields[i+1] == "ns/op" {
			res.nsPerOp = v
			seenNs = true
		} else {
			res.metrics[fields[i+1]] = v
		}
	}
	return name, res, seenNs
}

func delta(old, new float64) string {
	if old == 0 {
		return "     n/a"
	}
	return fmt.Sprintf("%+7.1f%%", 100*(new-old)/old)
}

func formatNs(v float64) string {
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

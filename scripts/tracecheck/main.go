// Command tracecheck validates a wbsn control-plane endpoint: it
// fetches /traces and asserts end-to-end window-trace continuity (every
// published tree stitches node-side spans to gateway-side spans), and
// checks /healthz, /buildinfo and /sessions answer well-formed. CI's
// smoke and soak scripts poll it after driving traffic.
//
// Usage:
//
//	tracecheck [-min-trees N] [-want-sessions N] [-evict-one] <base-url>
//
// base-url is the telemetry listener root (http://host:port). With
// -evict-one the first listed session is POSTed to /sessions/{id}/evict
// and the immediately following /sessions poll must no longer list it —
// the control plane's observability contract. Exit status 0 means every
// requirement held.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"wbsn/internal/telemetry"
	"wbsn/internal/telemetry/trace"
)

var client = &http.Client{Timeout: 10 * time.Second}

func main() {
	minTrees := flag.Int("min-trees", 1, "minimum published trace trees required")
	wantSessions := flag.Int("want-sessions", -1, "exact /sessions count required (-1 skips)")
	evictOne := flag.Bool("evict-one", false, "evict the first listed session and verify the next poll misses it")
	allowDraining := flag.Bool("allow-draining", false, "accept a 503 (draining) /healthz — for processes checked after their run ended")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-trees N] [-want-sessions N] [-evict-one] [-allow-draining] <base-url>")
		os.Exit(2)
	}
	base := flag.Arg(0)

	// /healthz must answer 200 on a live process (or 503 once it drains).
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		fail("healthz: %v", err)
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case *allowDraining && resp.StatusCode == http.StatusServiceUnavailable:
	default:
		fail("healthz: status %d", resp.StatusCode)
	}

	// /buildinfo must be a valid provenance document.
	var bi telemetry.BuildInfo
	getJSON(base+"/buildinfo", &bi)
	if bi.GoVersion == "" {
		fail("buildinfo: empty go_version")
	}

	// /traces: continuity is the tentpole contract — a published tree
	// exists only for a delivered window, and must span both sides.
	var traces trace.Snapshot
	getJSON(base+"/traces", &traces)
	trees := append(traces.Recent, traces.Slowest...)
	if len(traces.Recent) < *minTrees {
		fail("traces: %d recent trees, want >= %d (recorded %d, dropped %d)",
			len(traces.Recent), *minTrees, traces.Recorded, traces.Dropped)
	}
	for i, tr := range trees {
		if tr.Trace == "" {
			fail("traces: tree %d has an empty id", i)
		}
		if len(tr.Node) == 0 {
			fail("traces: tree %d (%s) has no node-side spans", i, tr.Trace)
		}
		if len(tr.Gateway) == 0 {
			fail("traces: tree %d (%s) has no gateway-side spans", i, tr.Trace)
		}
	}

	// /sessions must parse; optionally pin the count and round-trip an
	// eviction.
	sess := getSessions(base)
	if *wantSessions >= 0 && len(sess.Sessions) != *wantSessions {
		fail("sessions: %d listed, want %d", len(sess.Sessions), *wantSessions)
	}
	if *evictOne {
		if len(sess.Sessions) == 0 {
			fail("evict-one: no sessions to evict")
		}
		id := sess.Sessions[0].ID
		resp, err := client.Post(fmt.Sprintf("%s/sessions/%d/evict", base, id), "", nil)
		if err != nil {
			fail("evict %d: %v", id, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("evict %d: status %d", id, resp.StatusCode)
		}
		for _, s := range getSessions(base).Sessions {
			if s.ID == id {
				fail("evict %d: session still listed on the next poll", id)
			}
		}
		fmt.Printf("tracecheck: evicted session %d, next poll clean\n", id)
	}

	fmt.Printf("tracecheck: ok (%d trees: %d recent, %d slowest; recorded %d, dropped %d; %d sessions)\n",
		len(trees), len(traces.Recent), len(traces.Slowest), traces.Recorded, traces.Dropped, len(sess.Sessions))
}

type sessionsDoc struct {
	Draining bool                    `json:"draining"`
	Sessions []telemetry.SessionInfo `json:"sessions"`
}

func getSessions(base string) sessionsDoc {
	var doc sessionsDoc
	getJSON(base+"/sessions", &doc)
	return doc
}

func getJSON(url string, v any) {
	resp, err := client.Get(url)
	if err != nil {
		fail("fetch %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("fetch %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fail("%s: invalid JSON: %v", url, err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

#!/bin/sh
# Telemetry endpoint smoke test: start `wbsn-sim -fleet -telemetry` on
# an ephemeral port, scrape /metrics while the sweep runs, and verify
# the JSON carries real traffic on every pipeline layer (stage latency
# histograms, ARQ counters, gateway queue gauge, radio energy, and —
# with -solver-tol armed — the adaptive-solver counters: solves, warm
# seeds, early exits, momentum restarts, warm resets at patient
# boundaries, and the iteration histogram). Then checks the control
# surfaces beside /metrics: /traces must carry stitched end-to-end
# window trees, and /healthz, /buildinfo and /sessions must answer
# well-formed. Fails non-zero if the endpoint never comes up or never
# populates.
set -eu
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
SIM_PID=""
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/wbsn-sim" ./cmd/wbsn-sim
go build -o "$WORK/telemetrycheck" ./scripts/telemetrycheck
go build -o "$WORK/tracecheck" ./scripts/tracecheck

# Linger keeps the endpoint alive after the sweep so a slow scraper
# still sees the fully-populated registry.
"$WORK/wbsn-sim" -fleet -solver-tol 1e-3 -telemetry 127.0.0.1:0 -telemetry-linger 120s \
	>"$WORK/stdout.log" 2>"$WORK/stderr.log" &
SIM_PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's|^telemetry: listening on http://\([^/]*\)/metrics$|\1|p' "$WORK/stderr.log" | head -n 1)"
	[ -n "$ADDR" ] && break
	kill -0 "$SIM_PID" 2>/dev/null || { echo "telemetry_smoke: wbsn-sim exited early" >&2; cat "$WORK/stderr.log" >&2; exit 1; }
	sleep 0.2
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "telemetry_smoke: endpoint never announced its address" >&2
	cat "$WORK/stderr.log" >&2
	exit 1
fi
echo "telemetry_smoke: scraping http://$ADDR/metrics"

i=0
while [ $i -lt 300 ]; do
	if "$WORK/telemetrycheck" "http://$ADDR/metrics" \
		pipeline.stage.cs.ns \
		pipeline.stage.link.ns \
		pipeline.stage.gateway_decode.ns \
		link.packets \
		link.retransmissions \
		gateway.queue.depth \
		gateway.decode.ns \
		link.radio.energy_j \
		fleet.patients.done \
		solver.solves \
		solver.warm_solves \
		solver.early_exits \
		solver.restarts \
		solver.warm_resets \
		solver.iters 2>"$WORK/check.log"; then
		# Metrics are live — now the control surfaces. The sim has no
		# network sessions (-want-sessions 0) and may already be in its
		# post-run linger (-allow-draining), but /traces must hold
		# stitched window trees from the fleet sweep.
		"$WORK/tracecheck" -min-trees 1 -want-sessions 0 -allow-draining "http://$ADDR"
		echo "telemetry_smoke: OK"
		exit 0
	fi
	kill -0 "$SIM_PID" 2>/dev/null || { echo "telemetry_smoke: wbsn-sim exited before metrics populated" >&2; cat "$WORK/check.log" >&2; exit 1; }
	sleep 0.2
	i=$((i + 1))
done
echo "telemetry_smoke: metrics never fully populated" >&2
cat "$WORK/check.log" >&2
exit 1

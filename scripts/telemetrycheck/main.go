// Command telemetrycheck validates a wbsn-sim telemetry endpoint: it
// fetches the /metrics JSON (or reads it from stdin with "-"), checks
// it parses into a telemetry.Snapshot, and verifies each required
// metric name exists and has seen traffic. CI's endpoint smoke test
// polls it until the fleet sweep has populated every layer.
//
// Usage:
//
//	telemetrycheck <url|-> [required-metric ...]
//
// A required counter or histogram must be non-zero, a float counter
// positive; a gauge only has to be present (queue depths legitimately
// idle at zero). Exit status 0 means every requirement held.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"wbsn/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: telemetrycheck <url|-> [required-metric ...]")
		os.Exit(2)
	}
	src := os.Args[1]
	var body io.Reader
	if src == "-" {
		body = os.Stdin
	} else {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			fail("fetch %s: %v", src, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("fetch %s: status %d", src, resp.StatusCode)
		}
		body = resp.Body
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(body).Decode(&snap); err != nil {
		fail("metrics payload is not valid snapshot JSON: %v", err)
	}
	for _, key := range os.Args[2:] {
		if err := check(&snap, key); err != nil {
			fail("%v", err)
		}
	}
	fmt.Printf("telemetrycheck: ok (%d counters, %d histograms, %d gauges, %d trace spans)\n",
		len(snap.Counters), len(snap.Histograms), len(snap.Gauges), len(snap.Trace))
}

func check(snap *telemetry.Snapshot, key string) error {
	if v, ok := snap.Counters[key]; ok {
		if v == 0 {
			return fmt.Errorf("counter %q has seen no traffic", key)
		}
		return nil
	}
	if v, ok := snap.Floats[key]; ok {
		if v <= 0 {
			return fmt.Errorf("float counter %q has seen no traffic", key)
		}
		return nil
	}
	if h, ok := snap.Histograms[key]; ok {
		if h.Count == 0 {
			return fmt.Errorf("histogram %q has seen no observations", key)
		}
		return nil
	}
	if _, ok := snap.Gauges[key]; ok {
		return nil
	}
	return fmt.Errorf("metric %q missing from snapshot", key)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetrycheck: "+format+"\n", args...)
	os.Exit(1)
}

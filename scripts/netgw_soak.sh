#!/bin/sh
# Race-enabled soak of the networked gateway: builds wbsn-gateway and
# wbsn-loadgen with -race, runs the server with its control plane up,
# replays >= 100 concurrent fault-injected streams of traced (v2)
# frames against it for the soak window with in-process digest
# verification, then asserts trace continuity — every published window
# tree must stitch node-side spans to gateway-side spans — round-trips
# a session eviction through the control plane, and drains the server
# with SIGTERM. The run fails on any stream failure, any digest
# mismatch, broken trace trees, any detected data race, or an unclean
# drain.
#
# Usage: scripts/netgw_soak.sh [run_for] [streams]
#   run_for defaults to 30s; streams defaults to 100.
set -eu
cd "$(dirname "$0")/.."

RUN_FOR="${1:-30s}"
STREAMS="${2:-100}"
ADDR="127.0.0.1:19765"
TEL_ADDR="127.0.0.1:19766"
BIN="$(mktemp -d)"
trap 'kill "$GW_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -race -o "$BIN/wbsn-gateway" ./cmd/wbsn-gateway
go build -race -o "$BIN/wbsn-loadgen" ./cmd/wbsn-loadgen
go build -o "$BIN/tracecheck" ./scripts/tracecheck

# Short records + solver early exit keep per-window decode cheap enough
# that a single CI core sustains the stream count under -race.
"$BIN/wbsn-gateway" -addr "$ADDR" -seed 42 -solver-iters 40 -solver-tol 1e-3 \
	-telemetry "$TEL_ADDR" -drain-timeout 60s 2>gateway.soak.log &
GW_PID=$!

# Wait for the listener.
i=0
until "$BIN/wbsn-loadgen" -addr "$ADDR" -seed 42 -solver-iters 40 -solver-tol 1e-3 \
	-streams 1 -records 1 -duration 4 >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 20 ]; then
		echo "netgw_soak: gateway did not come up" >&2
		cat gateway.soak.log >&2
		exit 1
	fi
	sleep 0.5
done

echo "netgw_soak: soaking $STREAMS streams for $RUN_FOR with fault injection (traced frames)" >&2
"$BIN/wbsn-loadgen" -addr "$ADDR" -seed 42 -solver-iters 40 -solver-tol 1e-3 \
	-streams "$STREAMS" -records 4 -duration 4 -run-for "$RUN_FOR" -verify -trace \
	-timeout 10s -max-attempts 30 \
	-fault-reset 0.02 -fault-truncate 0.02 -fault-bitflip 0.03 \
	-fault-slowloris 0.01 -fault-dup 0.1

# Trace continuity under faults: every published tree must carry spans
# from both sides of the wire. The sessions from the soak are still in
# their TTL, so the eviction round-trip runs against a real table.
echo "netgw_soak: checking trace continuity and control plane" >&2
"$BIN/tracecheck" -min-trees 10 -evict-one "http://$TEL_ADDR"

# Graceful drain must complete (wbsn-gateway exits 0 on a clean drain,
# 1 on a drain-timeout overrun or a -race detection).
kill -TERM "$GW_PID"
wait "$GW_PID"
GW_RC=$?
trap 'rm -rf "$BIN"' EXIT
if [ "$GW_RC" -ne 0 ]; then
	echo "netgw_soak: gateway exited $GW_RC (unclean drain or data race)" >&2
	cat gateway.soak.log >&2
	exit 1
fi
if grep -q 'DATA RACE' gateway.soak.log; then
	echo "netgw_soak: data race detected in gateway" >&2
	cat gateway.soak.log >&2
	exit 1
fi
tail -2 gateway.soak.log >&2
rm -f gateway.soak.log
echo "netgw_soak: OK" >&2

#!/bin/sh
# Runs the PR's performance benchmark suite and captures the raw
# go-test JSON event stream (one event per line; benchmark results live
# in the "Output" fields of run/output events).
#
# Usage: scripts/bench.sh [benchtime] [output]
#   benchtime defaults to 1s; pass e.g. "1x" for a smoke run.
#   output defaults to BENCH_PR3.json (the current PR's capture); pass
#   e.g. BENCH_PR2.json to regenerate an earlier PR's file with the
#   same bench set.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="${2:-BENCH_PR3.json}"

go test -run '^$' \
	-bench 'GatewayEndToEnd|GatewaySetup|ThroughputEngine|ReconstructParallel|FISTAReconstruct|FleetShards|FleetStreamPush' \
	-benchtime "$BENCHTIME" -benchmem -json . | tee "$OUT"

echo "wrote $OUT" >&2

#!/bin/sh
# Runs the PR's performance benchmark suite and captures the raw
# go-test JSON event stream (one event per line; benchmark results live
# in the "Output" fields of run/output events).
#
# Usage: scripts/bench.sh [benchtime] [output]
#   benchtime defaults to 1s; pass e.g. "1x" for a smoke run.
#   output defaults to BENCH_PR10.json (the current PR's capture); pass
#   e.g. BENCH_PR3.json to regenerate an earlier PR's file with the
#   same bench set.
#
# -benchmem is always on, so every capture carries B/op and allocs/op;
# benchdiff diffs and threshold-gates them alongside ns/op.
#
# Compare two captures with: go run ./scripts/benchdiff OLD.json NEW.json
#
# The event stream is staged in a temp file and only promoted to the
# output path when go test exits 0 — a compile error or bench panic
# must fail this script loudly instead of leaving a truncated capture
# behind (POSIX sh has no pipefail, so `go test | tee` would swallow
# the failure).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="${2:-BENCH_PR10.json}"
TMP="$(mktemp "$OUT.tmp.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

if ! go test -run '^$' \
	-bench 'GatewayEndToEnd|GatewaySetup|ThroughputEngine|ReconstructParallel|FISTAReconstruct|FISTAWarmVsCold|FISTABatch|FleetShards|FleetClusterRound|FleetCheckpoint|FleetStreamPush|TelemetryOverhead|ApplyTCSR|ApplyCSR|NetGatewayRecords' \
	-benchtime "$BENCHTIME" -benchmem -json . ./internal/cs ./internal/netgw >"$TMP"; then
	echo "bench.sh: go test -bench failed; $OUT left untouched" >&2
	cat "$TMP" >&2
	exit 1
fi
mv "$TMP" "$OUT"
cat "$OUT"
echo "wrote $OUT" >&2

#!/bin/sh
# Runs the PR's performance benchmark suite and captures the raw
# go-test JSON event stream in BENCH_PR2.json (one event per line;
# benchmark results live in the "Output" fields of run/output events).
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime defaults to 1s; pass e.g. "1x" for a smoke run.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="BENCH_PR2.json"

go test -run '^$' \
	-bench 'GatewayEndToEnd|GatewaySetup|ThroughputEngine|ReconstructParallel|FISTAReconstruct' \
	-benchtime "$BENCHTIME" -benchmem -json . | tee "$OUT"

echo "wrote $OUT" >&2

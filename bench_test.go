// Package wbsn_test hosts the experiment benchmarks: one per table or
// figure of the paper's evaluation (Section V) plus ablations of the
// design choices called out in DESIGN.md. The benchmarks regenerate the
// paper's rows/series and publish the headline values as custom metrics
// (b.ReportMetric), so `go test -bench=. -benchmem` reproduces the whole
// evaluation.
package wbsn_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"wbsn/internal/af"
	"wbsn/internal/classify"
	"wbsn/internal/core"
	"wbsn/internal/cs"
	"wbsn/internal/delineation"
	"wbsn/internal/dsp"
	"wbsn/internal/ecg"
	"wbsn/internal/energy"
	"wbsn/internal/fixedpt"
	"wbsn/internal/fleet"
	"wbsn/internal/gateway"
	"wbsn/internal/morpho"
	"wbsn/internal/spline"
	"wbsn/internal/telemetry"
	"wbsn/internal/wavelet"
	"wbsn/internal/wbsn"
)

// ---------------------------------------------------------------------
// Figure 5 — averaged output SNR vs compression ratio, single-lead vs
// multi-lead CS. Reports the 20 dB crossings (paper: 65.9 / 72.7).
// ---------------------------------------------------------------------

func BenchmarkFig5SNRvsCR(b *testing.B) {
	records := ecg.GenerateSet(ecg.Config{Duration: 15}, 42, 2)
	cfg := cs.SweepConfig{
		MaxWindowsPerRecord: 2,
		Seed:                42,
		Solver:              cs.SolverConfig{Iters: 120, Reweights: 2},
	}
	crs := []float64{50, 60, 66, 72, 78, 86}
	var slCross, mlCross float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := cs.Sweep(records, crs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		slCross = cs.CrossingCR(pts, dsp.GoodReconstructionSNR, false)
		mlCross = cs.CrossingCR(pts, dsp.GoodReconstructionSNR, true)
	}
	b.ReportMetric(slCross, "CR@20dB-single")
	b.ReportMetric(mlCross, "CR@20dB-multi")
	if !math.IsNaN(slCross) && !math.IsNaN(mlCross) && mlCross <= slCross {
		b.Errorf("multi-lead crossing %.1f should exceed single-lead %.1f", mlCross, slCross)
	}
}

// ---------------------------------------------------------------------
// Figure 6 — node energy breakdown (Radio / Sampling / Comp.) and total
// power reduction of CS vs raw streaming (paper: 44.7% / 56.1%).
// ---------------------------------------------------------------------

func BenchmarkFig6EnergyBreakdown(b *testing.B) {
	node := energy.DefaultNode()
	w := energy.WindowSpec{SamplesPerLead: 512, Leads: 3, BitsPerSample: 12}
	var redSL, redML float64
	for i := 0; i < b.N; i++ {
		raw := node.RawStreamingWindow(w)
		sl := node.CSWindow("SL", w, cs.MeasurementsForCR(512, 65.9), 4*512)
		ml := node.CSWindow("ML", w, cs.MeasurementsForCR(512, 72.7), 4*512)
		redSL = energy.PowerReduction(raw, sl)
		redML = energy.PowerReduction(raw, ml)
	}
	b.ReportMetric(100*redSL, "%reduction-single")
	b.ReportMetric(100*redML, "%reduction-multi")
	if redML <= redSL {
		b.Error("multi-lead CS must reduce more energy than single-lead")
	}
}

// ---------------------------------------------------------------------
// Figure 7 — average power of the synchronized multi-core platform vs a
// single-core equivalent for 3L-MF, 3L-MMD, RP-CLASS (paper: up to 40%
// reduction).
// ---------------------------------------------------------------------

func BenchmarkFig7MulticorePower(b *testing.B) {
	var results []wbsn.AppResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = wbsn.RunFigure7(wbsn.DefaultEnergy(), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(100*r.Reduction, "%red-"+r.App)
		if r.Reduction <= 0 {
			b.Errorf("%s: multi-core did not save power", r.App)
		}
	}
}

// ---------------------------------------------------------------------
// Text-1 — wavelet delineation accuracy (paper: Se/Sp > 90% for all
// fiducials) and the embedded duty cycle (paper: 7%).
// ---------------------------------------------------------------------

func BenchmarkText1Delineation(b *testing.B) {
	recs := ecg.GenerateSet(ecg.Config{Duration: 30, Noise: ecg.AmbulatoryNoise()}, 600, 3)
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	var total delineation.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = delineation.Report{}
		for _, rec := range recs {
			filtered, err := morpho.FilterLeads(rec.Leads, morpho.FilterConfig{Fs: 256})
			if err != nil {
				b.Fatal(err)
			}
			beats, err := del.Delineate(dsp.CombineRMS(filtered))
			if err != nil {
				b.Fatal(err)
			}
			total = delineation.Merge(total, delineation.Evaluate(rec, beats, delineation.DefaultTolerances()))
		}
	}
	b.ReportMetric(100*total.R.Se(), "%Se-R")
	b.ReportMetric(100*total.PPeak.Se(), "%Se-Ppeak")
	b.ReportMetric(100*total.TPeak.Se(), "%Se-Tpeak")
	b.ReportMetric(100*total.R.PPV(), "%PPV-R")
	if !total.AllAbove(0.90) {
		b.Errorf("delineation below the 90%% target:\n%s", total.String())
	}
	// Embedded duty cycle at the nominal few-MHz clock.
	res, err := wbsn.RunApp(wbsn.App3LMMD(), wbsn.DefaultEnergy(), 1)
	if err != nil {
		b.Fatal(err)
	}
	duty := wbsn.DutyCycleAt(res.SCStats.Cycles, 2e6, 1.0)
	b.ReportMetric(100*duty, "%duty-cycle")
}

// ---------------------------------------------------------------------
// Text-2 — AF detection sensitivity/specificity (paper: 96% / 93%).
// ---------------------------------------------------------------------

func BenchmarkText2AF(b *testing.B) {
	node, err := core.NewNode(core.Config{Mode: core.ModeAFAlarm})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the record set (generation excluded from timing).
	type labelled struct {
		rec *ecg.Record
		af  bool
	}
	var set []labelled
	for i := int64(0); i < 6; i++ {
		cfgN := ecg.Config{Seed: i, Duration: 60, Noise: ecg.NoiseConfig{EMG: 0.02}}
		if i%3 == 0 {
			cfgN.Rhythm.PVCRate = 0.08
		}
		set = append(set, labelled{ecg.Generate(cfgN), false})
		set = append(set, labelled{ecg.Generate(ecg.Config{
			Seed: 1000 + i, Duration: 60,
			Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF},
			Noise:  ecg.NoiseConfig{EMG: 0.02},
		}), true})
	}
	var se, sp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tp, fn, fp, tn int
		for _, s := range set {
			res, err := node.Process(s.rec)
			if err != nil {
				b.Fatal(err)
			}
			switch {
			case s.af && res.AFAlarm:
				tp++
			case s.af && !res.AFAlarm:
				fn++
			case !s.af && res.AFAlarm:
				fp++
			default:
				tn++
			}
		}
		se = float64(tp) / float64(tp+fn)
		sp = float64(tn) / float64(tn+fp)
	}
	b.ReportMetric(100*se, "%sensitivity")
	b.ReportMetric(100*sp, "%specificity")
	if se < 0.9 || sp < 0.9 {
		b.Errorf("AF detection Se=%.2f Sp=%.2f below plausibility floor", se, sp)
	}
}

// ---------------------------------------------------------------------
// Figure 1 — the abstraction ladder: transmitted bandwidth per level.
// ---------------------------------------------------------------------

func BenchmarkFig1Ladder(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 7, Duration: 30, Rhythm: ecg.RhythmConfig{PVCRate: 0.05}})
	var rungs []core.LadderRung
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rungs, err = core.Ladder(rec, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rungs {
		b.ReportMetric(r.TxBytesPerSecond, "B/s-"+r.Mode.String())
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i].TxBytesPerSecond >= rungs[i-1].TxBytesPerSecond {
			b.Error("bandwidth ladder not monotone")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

// BenchmarkAblationPhiDensity sweeps the sparse-binary sensing density d
// (ref [16]: few non-zeros suffice): reconstruction quality at CR 60 for
// d = 2, 4, 8 against a dense Gaussian matrix.
func BenchmarkAblationPhiDensity(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 77, Duration: 5})
	x := rec.Clean[0][:512]
	m := cs.MeasurementsForCR(512, 60)
	run := func(phi cs.Matrix) float64 {
		enc := cs.NewEncoder(phi)
		dec, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 120})
		if err != nil {
			b.Fatal(err)
		}
		xhat, err := dec.Reconstruct(enc.Encode(x))
		if err != nil {
			b.Fatal(err)
		}
		return dsp.SNRdB(x, xhat)
	}
	var snrs [4]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(5))
		for j, d := range []int{2, 4, 8} {
			phi, err := cs.NewSparseBinary(m, 512, d, rng)
			if err != nil {
				b.Fatal(err)
			}
			snrs[j] = run(phi)
		}
		g, err := cs.NewGaussian(m, 512, rng)
		if err != nil {
			b.Fatal(err)
		}
		snrs[3] = run(g)
	}
	b.ReportMetric(snrs[0], "SNR-d2")
	b.ReportMetric(snrs[1], "SNR-d4")
	b.ReportMetric(snrs[2], "SNR-d8")
	b.ReportMetric(snrs[3], "SNR-gauss")
	// The ref [16] claim: d=4 within a few dB of the dense matrix.
	if snrs[1] < snrs[3]-6 {
		b.Errorf("sparse d=4 (%.1f dB) far below dense Gaussian (%.1f dB)", snrs[1], snrs[3])
	}
}

// BenchmarkAblationVanHerk compares the O(1)-per-sample sliding-window
// erosion against the naive O(k) implementation (Section IV.A).
func BenchmarkAblationVanHerk(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	k := 51 // the 0.2 s baseline SE at 256 Hz
	b.Run("vanherk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := morpho.ErodeFlat(x, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := morpho.ErodeFlatNaive(x, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLinGauss compares the four-segment linearized
// exponential against math.Exp (ref [14]) in speed and worst-case error.
func BenchmarkAblationLinGauss(b *testing.B) {
	b.ReportMetric(fixedpt.ExpNegLin4MaxError(4001, math.Exp), "max-abs-error")
	us := make([]float64, 1024)
	rng := rand.New(rand.NewSource(4))
	for i := range us {
		us[i] = rng.Float64() * 4
	}
	b.Run("lin4", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += fixedpt.ExpNegLin4(us[i%len(us)])
		}
		_ = s
	})
	b.Run("exact", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += math.Exp(-us[i%len(us)])
		}
		_ = s
	})
}

// BenchmarkAblationRPPacking reports the memory of the 2-bit packed
// random-projection matrix against float64 storage (Section IV.A) and
// times the projection.
func BenchmarkAblationRPPacking(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	w := classify.DefaultBeatWindow(256)
	rp, err := classify.NewRPMatrix(16, w.Len(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rp.MemoryBytes()), "bytes-packed")
	b.ReportMetric(float64(16*w.Len()*8), "bytes-float64")
	x := make([]float64, w.Len())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rp.Project(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBroadcast quantifies the broadcast interconnect of
// ref [18]: cycles and program-memory accesses with merging on vs off.
func BenchmarkAblationBroadcast(b *testing.B) {
	app := wbsn.App3LMF()
	mcProg, _, err := app.Programs()
	if err != nil {
		b.Fatal(err)
	}
	progs := []*wbsn.Program{mcProg, mcProg, mcProg}
	var on, off wbsn.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mOn, err := wbsn.NewMachine(wbsn.MachineConfig{
			Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: true, Seed: 1,
		}, progs)
		if err != nil {
			b.Fatal(err)
		}
		on = mOn.Run(50e6)
		mOff, err := wbsn.NewMachine(wbsn.MachineConfig{
			Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: false, Seed: 1,
		}, progs)
		if err != nil {
			b.Fatal(err)
		}
		off = mOff.Run(50e6)
	}
	b.ReportMetric(float64(on.FetchAccesses), "imem-accesses-on")
	b.ReportMetric(float64(off.FetchAccesses), "imem-accesses-off")
	b.ReportMetric(float64(off.Cycles)/float64(on.Cycles), "cycle-penalty-off")
	if off.Cycles <= on.Cycles {
		b.Error("disabling broadcast should cost cycles")
	}
}

// BenchmarkAblationLeadCombine compares single-lead delineation with
// RMS-combined multi-lead delineation under EMG noise (ref [11]).
func BenchmarkAblationLeadCombine(b *testing.B) {
	recs := ecg.GenerateSet(ecg.Config{Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.12}}, 900, 3)
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	var seSingle, seComb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var single, comb delineation.Report
		for _, rec := range recs {
			bs, err := del.Delineate(rec.Leads[2])
			if err != nil {
				b.Fatal(err)
			}
			bc, err := del.Delineate(dsp.CombineRMS(rec.Leads))
			if err != nil {
				b.Fatal(err)
			}
			single = delineation.Merge(single, delineation.Evaluate(rec, bs, delineation.DefaultTolerances()))
			comb = delineation.Merge(comb, delineation.Evaluate(rec, bc, delineation.DefaultTolerances()))
		}
		seSingle = single.R.Se()
		seComb = comb.R.Se()
	}
	b.ReportMetric(100*seSingle, "%Se-single-lead")
	b.ReportMetric(100*seComb, "%Se-rms-combined")
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the embedded kernels.
// ---------------------------------------------------------------------

func BenchmarkCSEncodeQ15(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	phi, err := cs.NewSparseBinary(175, 512, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	enc := cs.NewEncoder(phi)
	x := make([]fixedpt.Q15, 512)
	for i := range x {
		x[i] = fixedpt.FromFloat(rng.Float64()*0.5 - 0.25)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeQ15(x)
	}
}

// benchWindowStream encodes eight consecutive 512-sample windows of one
// lead — the contiguous stream a gateway receiver actually decodes, and
// the workload where warm-starting pays off (window k seeds window k+1).
func benchWindowStream(b *testing.B, seed int64) (phi cs.Matrix, xs, ys [][]float64) {
	b.Helper()
	const n, windows = 512, 8
	rec := ecg.Generate(ecg.Config{Seed: seed, Duration: float64(windows*n)/256 + 2})
	m := cs.MeasurementsForCR(n, 65.9)
	phi, err := cs.NewSparseBinary(m, n, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	enc := cs.NewEncoder(phi)
	xs = make([][]float64, windows)
	ys = make([][]float64, windows)
	for w := range xs {
		xs[w] = rec.Clean[0][w*n : (w+1)*n]
		ys[w] = enc.Encode(xs[w])
	}
	return phi, xs, ys
}

func benchPRD(x, xhat []float64) float64 {
	var num, den float64
	for i := range x {
		d := x[i] - xhat[i]
		num += d * d
		den += x[i] * x[i]
	}
	return 100 * math.Sqrt(num/den)
}

// BenchmarkFISTAReconstruct is the headline solver benchmark: the
// convergence-aware warm-started solver streaming consecutive windows
// (each b.N iteration decodes one window, cycling through the stream
// with persistent warm state). ns/op is therefore per-window and
// directly comparable to the PR4 fixed-budget capture; the custom
// metrics report the mean iteration count against the 150-iteration
// budget and the PRD penalty relative to the cold fixed-budget solve.
func BenchmarkFISTAReconstruct(b *testing.B) {
	phi, xs, ys := benchWindowStream(b, 9)
	cold, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 150})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 150, Tol: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	// Quality check outside the timed loop: one warm pass over the
	// stream against the cold fixed-budget reference.
	var prdWarm, prdCold float64
	qws := cs.NewWarmState()
	for w := range ys {
		xw, _, err := dec.ReconstructWarm(ys[w], qws)
		if err != nil {
			b.Fatal(err)
		}
		xc, err := cold.Reconstruct(ys[w])
		if err != nil {
			b.Fatal(err)
		}
		prdWarm += benchPRD(xs[w], xw)
		prdCold += benchPRD(xs[w], xc)
	}
	ws := cs.NewWarmState()
	var iters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := dec.ReconstructWarm(ys[i%len(ys)], ws)
		if err != nil {
			b.Fatal(err)
		}
		iters += st.Iters
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/solve")
	b.ReportMetric(prdWarm/float64(len(ys)), "PRD%-warm")
	b.ReportMetric(prdCold/float64(len(ys)), "PRD%-cold")
}

// BenchmarkFISTAWarmVsCold isolates the two adaptive-solver levers on
// the same window stream: the fixed-budget baseline, the convergence
// early exit alone (cold seeds), and early exit plus warm-starting.
func BenchmarkFISTAWarmVsCold(b *testing.B) {
	phi, _, ys := benchWindowStream(b, 9)
	variants := []struct {
		name string
		cfg  cs.SolverConfig
		warm bool
	}{
		{"cold-fixed", cs.SolverConfig{Iters: 150}, false},
		{"tol-only", cs.SolverConfig{Iters: 150, Tol: 1e-3}, false},
		{"warm+tol", cs.SolverConfig{Iters: 150, Tol: 1e-3}, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			dec, err := cs.NewDecoder(phi, v.cfg)
			if err != nil {
				b.Fatal(err)
			}
			var ws *cs.WarmState
			if v.warm {
				ws = cs.NewWarmState()
			}
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := dec.ReconstructWarm(ys[i%len(ys)], ws)
				if err != nil {
					b.Fatal(err)
				}
				iters += st.Iters
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/solve")
		})
	}
}

func BenchmarkWaveletDWT(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	w := wavelet.Daubechies8()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Forward(x, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtrousTransform(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 11, Duration: 4})
	x := rec.Clean[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Atrous(x, wavelet.AtrousScales); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelineateOneSecond(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 12, Duration: 60})
	combined := dsp.CombineRMS(rec.Clean)
	del, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := del.Delineate(combined); err != nil {
			b.Fatal(err)
		}
	}
	// Normalise to per-second-of-signal cost.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/60, "ns/signal-s")
}

func BenchmarkAFDetect(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 13, Duration: 120, Rhythm: ecg.RhythmConfig{Kind: ecg.RhythmAF}})
	del, _ := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	beats, err := del.Delineate(dsp.CombineRMS(rec.Clean))
	if err != nil {
		b.Fatal(err)
	}
	det, err := af.NewDetector(af.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(beats)
	}
}

func BenchmarkMorphFilterOneLead(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 14, Duration: 10, Noise: ecg.AmbulatoryNoise()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := morpho.Filter(rec.Leads[0], morpho.FilterConfig{Fs: 256}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulticoreSimCycle(b *testing.B) {
	app := wbsn.App3LMMD()
	mcProg, _, err := app.Programs()
	if err != nil {
		b.Fatal(err)
	}
	progs := []*wbsn.Program{mcProg, mcProg, mcProg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := wbsn.NewMachine(wbsn.MachineConfig{
			Cores: 3, IMemBanks: 2, DMemBanks: 3, Broadcast: true, Seed: 1,
		}, progs)
		if err != nil {
			b.Fatal(err)
		}
		m.Run(50e6)
	}
}

// ---------------------------------------------------------------------
// Extended ablations: solver variants, quantisation, QRS baselines, and
// the end-to-end gateway loop.
// ---------------------------------------------------------------------

// BenchmarkAblationSolverVariants compares the reconstruction quality of
// plain FISTA, reweighted FISTA, tree-model IHT (ref [17]) and the OMP
// baseline at the paper's single-lead operating point.
func BenchmarkAblationSolverVariants(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 88, Duration: 5})
	x := rec.Clean[0][:512]
	m := cs.MeasurementsForCR(512, 65.9)
	rng := rand.New(rand.NewSource(12))
	phi, err := cs.NewSparseBinary(m, 512, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	enc := cs.NewEncoder(phi)
	y := enc.Encode(x)
	var snrs [4]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 150})
		if err != nil {
			b.Fatal(err)
		}
		rw, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 150, Reweights: 2})
		if err != nil {
			b.Fatal(err)
		}
		x0, err := plain.Reconstruct(y)
		if err != nil {
			b.Fatal(err)
		}
		x1, err := rw.Reconstruct(y)
		if err != nil {
			b.Fatal(err)
		}
		x2, err := rw.TreeIHT(y, 80, 150)
		if err != nil {
			b.Fatal(err)
		}
		x3, err := rw.OMP(y, 80, 1e-5)
		if err != nil {
			b.Fatal(err)
		}
		snrs[0] = dsp.SNRdB(x, x0)
		snrs[1] = dsp.SNRdB(x, x1)
		snrs[2] = dsp.SNRdB(x, x2)
		snrs[3] = dsp.SNRdB(x, x3)
	}
	b.ReportMetric(snrs[0], "SNR-fista")
	b.ReportMetric(snrs[1], "SNR-reweighted")
	b.ReportMetric(snrs[2], "SNR-treeIHT")
	b.ReportMetric(snrs[3], "SNR-omp")
}

// BenchmarkAblationQuantBits sweeps the bits-per-measurement payload
// quantisation (the Figure 6 payload knob).
func BenchmarkAblationQuantBits(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 89, Duration: 5})
	x := rec.Clean[0][:512]
	m := cs.MeasurementsForCR(512, 60)
	rng := rand.New(rand.NewSource(13))
	phi, err := cs.NewSparseBinary(m, 512, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	enc := cs.NewEncoder(phi)
	dec, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 120})
	if err != nil {
		b.Fatal(err)
	}
	y := enc.Encode(x)
	scale := cs.AutoScale(y, 1.1)
	results := map[int]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{4, 8, 12} {
			q, err := cs.NewQuantizer(bits, scale)
			if err != nil {
				b.Fatal(err)
			}
			yq, _ := q.QuantizeSlice(y)
			xhat, err := dec.Reconstruct(yq)
			if err != nil {
				b.Fatal(err)
			}
			results[bits] = dsp.SNRdB(x, xhat)
		}
	}
	b.ReportMetric(results[4], "SNR-4bit")
	b.ReportMetric(results[8], "SNR-8bit")
	b.ReportMetric(results[12], "SNR-12bit")
}

// BenchmarkAblationQRSBaseline compares the wavelet QRS stage against
// the Pan-Tompkins baseline (the ref [11] comparative evaluation).
func BenchmarkAblationQRSBaseline(b *testing.B) {
	recs := ecg.GenerateSet(ecg.Config{Duration: 30, Noise: ecg.NoiseConfig{EMG: 0.04}}, 700, 3)
	wd, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	pt, err := delineation.NewPanTompkins(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("wavelet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rec := range recs {
				if _, err := wd.Delineate(dsp.CombineRMS(rec.Leads)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("pantompkins", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rec := range recs {
				pt.DetectQRS(dsp.CombineRMS(rec.Leads))
			}
		}
	})
}

// BenchmarkGatewayEndToEnd times the full compress → transmit →
// reconstruct loop for one 2-second 3-lead window (the receiver budget
// that ref [5]'s real-time iPhone decoder must meet). Stream and
// receiver construction happens once, outside the timed loop — the
// steady-state per-record cost is the quantity under test; construction
// is measured separately by BenchmarkGatewaySetup.
func BenchmarkGatewayEndToEnd(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 90, Duration: 4})
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	rx, err := gateway.NewReceiver(gateway.MatchNode(node.Config()))
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Reset()
		rx.Reset()
		events, err := stream.PushBlock(chunk)
		if err != nil {
			b.Fatal(err)
		}
		if err := rx.ConsumeEvents(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewaySetup isolates the construction cost the end-to-end
// benchmark used to hide inside its timed loop: sensing-matrix
// regeneration, solver derivation (Lipschitz bound, synthesis tables)
// and delineator setup.
func BenchmarkGatewaySetup(b *testing.B) {
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	cfg := gateway.MatchNode(node.Config())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.NewStream(); err != nil {
			b.Fatal(err)
		}
		if _, err := gateway.NewReceiver(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputEngine drives the parallel reconstruction engine
// over a pre-encoded record batch at 1, 2 and GOMAXPROCS workers,
// reporting records/s and windows/s as custom metrics. Each worker
// count runs with the fixed-budget solver and with the convergence
// early exit armed (windows stay cold inside the batch API, so the
// cross-worker bit-identity contract is unchanged).
func BenchmarkThroughputEngine(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 92, Duration: 8})
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		b.Fatal(err)
	}
	var windows [][][]float64
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows = append(windows, e.Measurements)
		}
	}
	workerSet := dedupeCounts([]int{1, 2, runtime.GOMAXPROCS(0)})
	for _, tol := range []float64{0, 1e-3} {
		solver := "fixed"
		if tol > 0 {
			solver = "earlyexit"
		}
		cfg := gateway.MatchNode(node.Config())
		cfg.Solver.Tol = tol
		for _, workers := range workerSet {
			b.Run(fmt.Sprintf("solver=%s/workers=%d", solver, workers), func(b *testing.B) {
				eng, err := gateway.NewEngine(cfg, gateway.EngineConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if _, err := eng.DecodeWindows(windows); err != nil {
						b.Fatal(err)
					}
				}
				secs := time.Since(start).Seconds()
				if secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "records/s")
					b.ReportMetric(float64(b.N*len(windows))/secs, "windows/s")
				}
			})
		}
	}
}

// dedupeCounts drops repeated entries from a benchmark sweep while
// preserving order. On a single-core host GOMAXPROCS(0) collapses onto
// 1, which would otherwise register two subtests with the same name.
func dedupeCounts(counts []int) []int {
	out := counts[:0]
	seen := make(map[int]bool, len(counts))
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkThroughputEngineBatched measures the structure-of-arrays
// batched engine on its target workload: several concurrent warm
// streams whose windows arrive together, so one worker can fold K
// queued windows into a single SoA solver pass. Eight warm streams
// replay the same 8-second record window by window; batch=1 is the
// sequential baseline (single-job batches route through the scalar
// solver, bit-identically), and records/s counts one record per stream
// per iteration — directly comparable to BenchmarkThroughputEngine's
// records/s at equal worker count.
func BenchmarkThroughputEngineBatched(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 92, Duration: 8})
	node, err := core.NewNode(core.Config{Mode: core.ModeCS, CSRatio: 60, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := node.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([][]float64, len(rec.Leads))
	for li := range chunk {
		chunk[li] = rec.Clean[li]
	}
	events, err := stream.PushBlock(chunk)
	if err != nil {
		b.Fatal(err)
	}
	var windows [][][]float64
	for _, e := range events {
		if e.Kind == core.EventPacket && e.Measurements != nil {
			windows = append(windows, e.Measurements)
		}
	}
	cfg := gateway.MatchNode(node.Config())
	cfg.Solver.Tol = 1e-3
	const streams = 8
	for _, batch := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			eng, err := gateway.NewEngine(cfg, gateway.EngineConfig{
				Workers:   1,
				Batch:     batch,
				BatchWait: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			wss := make([]*cs.WarmState, streams)
			for s := range wss {
				wss[s] = cs.NewWarmState()
			}
			jobs := make([]*gateway.Job, streams)
			// One untimed sweep seeds every stream's warm state so the
			// timed loop measures steady-state throughput even at tiny
			// -benchtime iteration counts.
			for _, win := range windows {
				for s := range wss {
					j, err := eng.SubmitWarm(win, wss[s])
					if err != nil {
						b.Fatal(err)
					}
					jobs[s] = j
				}
				for _, j := range jobs {
					if _, err := j.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for _, win := range windows {
					for s := range wss {
						j, err := eng.SubmitWarm(win, wss[s])
						if err != nil {
							b.Fatal(err)
						}
						jobs[s] = j
					}
					for _, j := range jobs {
						if _, err := j.Wait(); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			secs := time.Since(start).Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N*streams)/secs, "records/s")
				b.ReportMetric(float64(b.N*streams*len(windows))/secs, "windows/s")
			}
		})
	}
}

// BenchmarkReconstructParallel hammers one shared decoder from all
// procs via b.RunParallel — the contention profile of the engine's
// worker pool (scratch pools, immutable decoder state).
func BenchmarkReconstructParallel(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 93, Duration: 4})
	m := cs.MeasurementsForCR(512, 65.9)
	phi, err := cs.NewSparseBinary(m, 512, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	dec, err := cs.NewDecoder(phi, cs.SolverConfig{Iters: 60, Reweights: 1})
	if err != nil {
		b.Fatal(err)
	}
	y := cs.NewEncoder(phi).Encode(rec.Clean[0][:512])
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := dec.Reconstruct(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBaselineRemoval compares the paper's two baseline-
// wander estimators (Section III.B: morphological open/close of ref [9]
// and PR-knot cubic splines of ref [10]) against a sliding-median
// estimator and a 0.5 Hz high-pass, scoring the residual against the
// known synthetic drift.
func BenchmarkAblationBaselineRemoval(b *testing.B) {
	rec := ecg.Generate(ecg.Config{
		Seed: 91, Duration: 30,
		Noise: ecg.NoiseConfig{BaselineWander: 0.3},
	})
	fs := rec.Fs
	lead := rec.Leads[0]
	clean := rec.Clean[0]
	truthDrift := make([]float64, len(lead))
	for i := range truthDrift {
		truthDrift[i] = lead[i] - clean[i]
	}
	qrs := rec.RPeaks()
	score := func(corrected []float64) float64 {
		// Residual drift: corrected minus clean, RMS over the interior.
		res := 0.0
		n := 0
		for i := 512; i < len(lead)-512; i++ {
			d := corrected[i] - clean[i]
			res += d * d
			n++
		}
		return math.Sqrt(res / float64(n))
	}
	var rmsMorph, rmsSpline, rmsMedian, rmsHP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corrected, err := morpho.RemoveBaseline(lead, morpho.FilterConfig{Fs: fs})
		if err != nil {
			b.Fatal(err)
		}
		rmsMorph = score(corrected)
		corrSpline, _ := spline.RemoveBaseline(lead, qrs, fs)
		rmsSpline = score(corrSpline)
		base, err := dsp.MedianFilter(lead, int(0.6*fs)|1)
		if err != nil {
			b.Fatal(err)
		}
		corrMed := make([]float64, len(lead))
		for j := range lead {
			corrMed[j] = lead[j] - base[j]
		}
		rmsMedian = score(corrMed)
		hp, err := dsp.Butterworth2Highpass(0.5, fs)
		if err != nil {
			b.Fatal(err)
		}
		rmsHP = score(hp.Apply(lead))
	}
	b.ReportMetric(rmsMorph*1000, "resid-mV-morph")
	b.ReportMetric(rmsSpline*1000, "resid-mV-spline")
	b.ReportMetric(rmsMedian*1000, "resid-mV-median")
	b.ReportMetric(rmsHP*1000, "resid-mV-highpass")
}

// BenchmarkAblationNoiseSuppression compares the three noise-suppression
// options on EMG-corrupted ECG: the morphological open/close average of
// ref [9], wavelet garrote shrinkage, and the 0.5-40 Hz band-pass.
func BenchmarkAblationNoiseSuppression(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 92, Duration: 16, Noise: ecg.NoiseConfig{EMG: 0.06}})
	clean := rec.Clean[0]
	lead := rec.Leads[0]
	score := func(y []float64) float64 { return dsp.SNRdB(clean[256:len(clean)-256], y[256:len(y)-256]) }
	var snrIn, snrMorph, snrWave, snrBP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snrIn = score(lead)
		ym, err := morpho.SuppressNoise(lead, morpho.FilterConfig{Fs: rec.Fs})
		if err != nil {
			b.Fatal(err)
		}
		snrMorph = score(ym)
		yw, err := wavelet.Denoise(lead, wavelet.DenoiseConfig{})
		if err != nil {
			b.Fatal(err)
		}
		snrWave = score(yw)
		ch, err := dsp.BandpassECG(rec.Fs)
		if err != nil {
			b.Fatal(err)
		}
		snrBP = score(ch.Apply(lead))
	}
	b.ReportMetric(snrIn, "SNR-in")
	b.ReportMetric(snrMorph, "SNR-morph")
	b.ReportMetric(snrWave, "SNR-wavelet")
	b.ReportMetric(snrBP, "SNR-bandpass")
	if snrWave <= snrIn {
		b.Errorf("wavelet denoising did not improve SNR: %.1f <= %.1f", snrWave, snrIn)
	}
}

// BenchmarkNoiseStressDelineation reproduces the classic noise-stress
// protocol: R-peak detection quality as EMG noise grows, with and
// without the conditioning chain. Published delineators degrade
// gracefully until the noise approaches the wave amplitudes.
func BenchmarkNoiseStressDelineation(b *testing.B) {
	wd, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	levels := []float64{0.02, 0.06, 0.12, 0.20}
	results := map[float64]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, emg := range levels {
			var rep delineation.Report
			for seed := int64(0); seed < 2; seed++ {
				rec := ecg.Generate(ecg.Config{
					Seed: 950 + seed, Duration: 30,
					Noise: ecg.NoiseConfig{EMG: emg},
				})
				filtered, err := morpho.FilterLeads(rec.Leads, morpho.FilterConfig{Fs: 256})
				if err != nil {
					b.Fatal(err)
				}
				beats, err := wd.Delineate(dsp.CombineRMS(filtered))
				if err != nil {
					b.Fatal(err)
				}
				rep = delineation.Merge(rep, delineation.Evaluate(rec, beats, delineation.DefaultTolerances()))
			}
			results[emg] = rep.R.Se()
		}
	}
	for _, emg := range levels {
		b.ReportMetric(100*results[emg], fmt.Sprintf("%%Se-R@EMG%.2f", emg))
	}
	if results[0.02] < 0.99 {
		b.Errorf("low-noise sensitivity %.3f", results[0.02])
	}
}

// BenchmarkRefClassificationTable reproduces the per-class evaluation
// style of ref [14]: 3-fold cross-validated sensitivity per beat class
// plus PVC specificity, on a mixed synthetic population.
func BenchmarkRefClassificationTable(b *testing.B) {
	recs := ecg.GenerateSet(ecg.Config{
		Duration: 120,
		Rhythm:   ecg.RhythmConfig{PVCRate: 0.1, APBRate: 0.06},
		Noise:    ecg.NoiseConfig{EMG: 0.02},
	}, 840, 3)
	w := classify.DefaultBeatWindow(256)
	rng := rand.New(rand.NewSource(21))
	rp, err := classify.NewRPMatrix(16, w.Len(), rng)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := classify.BuildDataset(recs, 0, w, rp)
	if err != nil {
		b.Fatal(err)
	}
	var cm *classify.ConfusionMatrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err = classify.CrossValidate(rp, ds, 3, classify.TrainConfig{PrototypesPerClass: 4, Seed: 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cm.Accuracy(), "%accuracy")
	b.ReportMetric(100*cm.Sensitivity(int(ecg.LabelNormal)), "%Se-N")
	b.ReportMetric(100*cm.Sensitivity(int(ecg.LabelPVC)), "%Se-V")
	b.ReportMetric(100*cm.Sensitivity(int(ecg.LabelAPB)), "%Se-A")
	b.ReportMetric(100*cm.Specificity(int(ecg.LabelPVC)), "%Sp-V")
}

// BenchmarkCoreScaling sweeps the platform's core count on an 8-lead
// conditioning workload (Section IV.B: parallelism converts into
// voltage-scaling headroom, with diminishing returns at the leakage
// floor).
func BenchmarkCoreScaling(b *testing.B) {
	var res []wbsn.AppResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = wbsn.RunCoreScaling(wbsn.DefaultEnergy(), 1, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range res {
		b.ReportMetric(r.MC.TotalW()*1e6, fmt.Sprintf("µW-%dcores", 1<<i))
	}
}

// BenchmarkDatabaseDelineation runs the Text-1 evaluation over the full
// 16-subject synthetic library (varying heart rates, wide-QRS,
// low-voltage, tall-T, ectopy, noise and AF) — the "averaged over all
// records" protocol of the clinical-database studies the paper cites.
func BenchmarkDatabaseDelineation(b *testing.B) {
	db := ecg.GenerateDatabase(30, 500)
	wd, err := delineation.NewWaveletDelineator(delineation.Config{Fs: 256})
	if err != nil {
		b.Fatal(err)
	}
	var total delineation.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = delineation.Report{}
		for _, rec := range db {
			filtered, err := morpho.FilterLeads(rec.Leads, morpho.FilterConfig{Fs: 256})
			if err != nil {
				b.Fatal(err)
			}
			beats, err := wd.Delineate(dsp.CombineRMS(filtered))
			if err != nil {
				b.Fatal(err)
			}
			total = delineation.Merge(total, delineation.Evaluate(rec, beats, delineation.DefaultTolerances()))
		}
	}
	b.ReportMetric(100*total.R.Se(), "%Se-R")
	b.ReportMetric(100*total.R.PPV(), "%PPV-R")
	b.ReportMetric(100*total.TPeak.Se(), "%Se-Tpeak")
	if total.R.Se() < 0.95 || total.R.PPV() < 0.95 {
		b.Errorf("database-wide QRS detection Se=%.3f PPV=%.3f", total.R.Se(), total.R.PPV())
	}
}

// ---------------------------------------------------------------------
// PR 3 — fleet engine: sharded multi-patient simulation and the
// allocation-free node hot path.
// ---------------------------------------------------------------------

// BenchmarkFleetShards runs a fixed patient population at 1, 2 and
// GOMAXPROCS shards, reporting throughput (patients/s) and the
// real-time factor (simulated seconds per wall second — how many live
// patients this host could serve). The per-patient work includes record
// synthesis, the streaming node, the ARQ link and gateway CS
// reconstruction; a reduced FISTA budget keeps the benchmark tractable
// without changing the scheduling profile.
func BenchmarkFleetShards(b *testing.B) {
	const (
		patients  = 6
		durationS = 4.0
	)
	shardSet := dedupeCounts([]int{1, 2, runtime.GOMAXPROCS(0)})
	for _, shards := range shardSet {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := fleet.NewEngine(fleet.Config{
				Patients:    patients,
				Shards:      shards,
				DurationS:   durationS,
				Seed:        61,
				SolverIters: 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			start := time.Now()
			var rtf float64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run()
				if err != nil {
					b.Fatal(err)
				}
				rtf = res.RealTimeFactor
			}
			secs := time.Since(start).Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N*patients)/secs, "patients/s")
			}
			b.ReportMetric(rtf, "rtf")
		})
	}
}

// BenchmarkFleetStreamPush measures the steady-state per-sample cost of
// the node hot path after the allocation-free rework: a warm stream
// absorbs one sample per iteration, so allocs/op is the headline number
// (chunk-boundary work amortises over the hop; the acceptance bar is
// <= 2 allocs/op).
func BenchmarkFleetStreamPush(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 62, Duration: 40})
	for _, mode := range []core.Mode{core.ModeCS, core.ModeDelineation} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := core.Config{Mode: mode}
			if mode == core.ModeCS {
				cfg.CSRatio = 60
				cfg.Seed = 14
			}
			node, err := core.NewNode(cfg)
			if err != nil {
				b.Fatal(err)
			}
			stream, err := node.NewStream()
			if err != nil {
				b.Fatal(err)
			}
			sample := make([]float64, len(rec.Leads))
			pos := 0
			push := func() {
				for li := range sample {
					sample[li] = rec.Leads[li][pos%rec.Len()]
				}
				pos++
				if _, err := stream.Push(sample); err != nil {
					b.Fatal(err)
				}
			}
			// Warm up the lead buffers and every scratch path.
			for i := 0; i < 4096; i++ {
				push()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				push()
			}
		})
	}
}

// ---------------------------------------------------------------------
// PR 4 — telemetry layer: the cost of observing the hot path.
// ---------------------------------------------------------------------

// BenchmarkTelemetryOverhead runs the BenchmarkFleetStreamPush loop with
// and without the full metric family attached. All recording is
// amortised at chunk boundaries — the mid-chunk Push executes no
// telemetry code — so the acceptance bar is a <3% ns/op regression on
// the instrumented variants.
func BenchmarkTelemetryOverhead(b *testing.B) {
	rec := ecg.Generate(ecg.Config{Seed: 63, Duration: 40})
	for _, mode := range []core.Mode{core.ModeCS, core.ModeDelineation} {
		for _, instrumented := range []bool{false, true} {
			tag := "off"
			if instrumented {
				tag = "on"
			}
			b.Run(fmt.Sprintf("%s/telemetry=%s", mode, tag), func(b *testing.B) {
				cfg := core.Config{Mode: mode}
				if mode == core.ModeCS {
					cfg.CSRatio = 60
					cfg.Seed = 14
				}
				node, err := core.NewNode(cfg)
				if err != nil {
					b.Fatal(err)
				}
				stream, err := node.NewStream()
				if err != nil {
					b.Fatal(err)
				}
				if instrumented {
					set := telemetry.NewSet(telemetry.NewRegistry())
					stream.SetTelemetry(set.Node)
				}
				sample := make([]float64, len(rec.Leads))
				pos := 0
				push := func() {
					for li := range sample {
						sample[li] = rec.Leads[li][pos%rec.Len()]
					}
					pos++
					if _, err := stream.Push(sample); err != nil {
						b.Fatal(err)
					}
				}
				for i := 0; i < 4096; i++ {
					push()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					push()
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// PR 10 — hierarchical cluster: scheduling-round cost and allocation
// discipline at population scale.
// ---------------------------------------------------------------------

// BenchmarkFleetClusterRound measures one scheduling round of the
// hierarchical cluster per iteration — per-patient wall cost and,
// through B/op and allocs/op, the steady-state allocation bill of the
// tiered-state machinery (cold rehydration, warm snapshot capture,
// batched telemetry). Rounds advance across iterations, so every
// iteration after the first exercises the warm-carry path.
func BenchmarkFleetClusterRound(b *testing.B) {
	const patients = 8
	for _, topo := range [][2]int{{1, 1}, {2, 2}} {
		b.Run(fmt.Sprintf("groups=%dx%d", topo[0], topo[1]), func(b *testing.B) {
			cl, err := fleet.NewCluster(fleet.ClusterConfig{
				Fleet: fleet.Config{
					Patients:    patients,
					Seed:        61,
					SolverIters: 40,
					SolverTol:   1e-3,
					WarmStart:   true,
				},
				Groups:      topo[0],
				GroupShards: topo[1],
				Rounds:      1 << 30, // never "done": RunRound drives rounds directly
				SessionS:    2,
				CarryWarm:   true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			// One warm-up round fills rig buffers and the warm tier.
			if _, err := cl.RunRound(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := cl.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			secs := time.Since(start).Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N*patients)/secs, "patients/s")
			}
		})
	}
}

// BenchmarkFleetCheckpoint measures a full checkpoint round trip
// (serialise + restore) of a populated cluster — the pause a soak pays
// at every save point, and the B/op bill of the codec.
func BenchmarkFleetCheckpoint(b *testing.B) {
	const patients = 256
	cl, err := fleet.NewCluster(fleet.ClusterConfig{
		Fleet: fleet.Config{
			Patients:    patients,
			Seed:        61,
			SolverIters: 20,
			SolverTol:   1e-3,
			WarmStart:   true,
		},
		Rounds:    1,
		SessionS:  2,
		CarryWarm: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := cl.WriteCheckpoint(&buf); err != nil {
			b.Fatal(err)
		}
		if err := cl.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
